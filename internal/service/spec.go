// Package service implements osmosisd: the fabric simulator as a
// long-running HTTP/JSON daemon. Clients submit simulation jobs (a
// fabric shape plus a traffic specification, including inline
// osmosis-trace v1 uploads); the daemon batches shape-compatible jobs
// onto the internal/parallel pool, streams incremental progress, and
// exports Prometheus-style text metrics.
//
// The determinism contract is the whole point: a job's result is a
// function of its spec alone. Jobs run on fabric.Session engines, so
// every job can be checkpointed at any pause point into an
// osmosis-ckpt v1 snapshot (wrapped in an osmosisd-job section carrying
// the spec), killed, and restored — on this daemon or another — to
// finish with byte-identical metrics (fabric.Metrics.Fingerprint) to
// its uninterrupted twin. Wall-clock concerns (batching windows,
// scrape timing, HTTP scheduling) live out here and never touch engine
// state, which is why this package is outside the determinism lint
// scope while everything it drives is inside.
package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/traffic"
)

// JobSpec is the wire format of one simulation job. The zero values of
// optional fields select the demonstrator defaults, so a minimal spec
// is {"fabric":{"hosts":64,"radix":8},"traffic":{"kind":"uniform","load":0.5},
// "measure_slots":1000}.
type JobSpec struct {
	// Name is an optional client label, echoed in status reports.
	Name    string      `json:"name,omitempty"`
	Fabric  FabricSpec  `json:"fabric"`
	Traffic TrafficSpec `json:"traffic"`
	// WarmupSlots run before measurement starts.
	WarmupSlots uint64 `json:"warmup_slots"`
	// MeasureSlots is the measured interval; must be > 0.
	MeasureSlots uint64 `json:"measure_slots"`
	// DrainSlots bounds the post-measurement drain-to-idle (the fabric
	// is lossless, so in-flight cells are delivered, not discarded).
	// 0 selects a generous default; the job fails if the fabric is not
	// idle within the bound.
	DrainSlots uint64 `json:"drain_slots,omitempty"`
}

// FabricSpec names a fabric shape: an XGFT of switches plus the
// arbitration and flow-control options of fabric.Config.
type FabricSpec struct {
	Hosts int `json:"hosts"`
	Radix int `json:"radix"`
	// Levels forces the fat-tree depth; 0 selects the minimal tree.
	Levels int `json:"levels,omitempty"`
	// Receivers per output; 0 selects the dual-receiver demonstrator.
	Receivers int `json:"receivers,omitempty"`
	// Scheduler is flppr | islip | pipelined-islip | pim | lqf;
	// "" selects flppr.
	Scheduler string `json:"scheduler,omitempty"`
	// SchedParam is the scheduler's iteration/sub-scheduler/depth
	// parameter; 0 selects each scheduler's default.
	SchedParam     int  `json:"sched_param,omitempty"`
	LinkDelaySlots int  `json:"link_delay_slots,omitempty"`
	InputCapacity  int  `json:"input_capacity,omitempty"`
	EgressBuffered bool `json:"egress_buffered,omitempty"`
	// Shards partitions the engine spatially; results are byte-
	// identical at any value, so this only trades wall-clock time.
	Shards int `json:"shards,omitempty"`
}

// TrafficSpec mirrors traffic.Config with a string kind and an optional
// inline osmosis-trace v1 upload.
type TrafficSpec struct {
	Kind         string  `json:"kind"`
	Load         float64 `json:"load,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	ControlShare float64 `json:"control_share,omitempty"`
	MeanBurst    float64 `json:"mean_burst,omitempty"`
	HotFraction  float64 `json:"hot_fraction,omitempty"`
	HotPort      int     `json:"hot_port,omitempty"`
	Fanin        int     `json:"fanin,omitempty"`
	EpochSlots   uint64  `json:"epoch_slots,omitempty"`
	PhaseSlots   uint64  `json:"phase_slots,omitempty"`
	ParetoAlpha  float64 `json:"pareto_alpha,omitempty"`
	// Trace is the full text of an osmosis-trace v1 recording; required
	// for kind "trace", rejected otherwise.
	Trace string `json:"trace,omitempty"`
}

// schedulerNames lists the checkpointable arbiters a job may request.
var schedulerNames = []string{"flppr", "islip", "lqf", "pim", "pipelined-islip"}

// newSchedulerFactory resolves a scheduler name to a per-switch
// constructor. Every returned scheduler implements sched.StateCodec, a
// requirement for checkpointing; seed feeds PIM's arbitration RNG so a
// rebuilt engine starts from the same stream the checkpoint will then
// overwrite.
func newSchedulerFactory(name string, radix, param int, seed uint64) (func() sched.Scheduler, error) {
	switch name {
	case "", "flppr":
		return func() sched.Scheduler { return sched.NewFLPPR(radix, param) }, nil
	case "islip":
		return func() sched.Scheduler { return sched.NewISLIP(radix, param) }, nil
	case "lqf":
		return func() sched.Scheduler { return sched.NewLQF(radix) }, nil
	case "pim":
		return func() sched.Scheduler { return sched.NewPIM(radix, param, seed) }, nil
	case "pipelined-islip":
		return func() sched.Scheduler { return sched.NewPipelinedISLIP(radix, param) }, nil
	}
	return nil, fmt.Errorf("service: unknown scheduler %q (want %s)", name, strings.Join(schedulerNames, " | "))
}

// trafficConfig translates the wire spec into a traffic.Config,
// parsing any inline trace upload.
func (t *TrafficSpec) trafficConfig(hosts int) (traffic.Config, error) {
	kind, err := traffic.ParseKind(t.Kind)
	if err != nil {
		return traffic.Config{}, err
	}
	cfg := traffic.Config{
		Kind: kind, N: hosts,
		Load: t.Load, Seed: t.Seed,
		ControlShare: t.ControlShare, MeanBurst: t.MeanBurst,
		HotFraction: t.HotFraction, HotPort: t.HotPort,
		Fanin: t.Fanin, EpochSlots: t.EpochSlots, PhaseSlots: t.PhaseSlots,
		ParetoAlpha: t.ParetoAlpha,
	}
	if kind == traffic.KindTrace {
		if t.Trace == "" {
			return traffic.Config{}, fmt.Errorf("service: traffic kind %q needs an inline trace upload", t.Kind)
		}
		tr, err := traffic.ReadTrace(strings.NewReader(t.Trace))
		if err != nil {
			return traffic.Config{}, err
		}
		if tr.N != hosts {
			return traffic.Config{}, fmt.Errorf("service: trace has %d ports, fabric has %d hosts", tr.N, hosts)
		}
		cfg.Trace = tr
	} else if t.Trace != "" {
		return traffic.Config{}, fmt.Errorf("service: traffic kind %q does not take a trace upload", t.Kind)
	}
	return cfg, nil
}

// validate rejects specs that cannot possibly build an engine, so
// submission errors surface at the HTTP boundary instead of inside a
// batch. Engine construction re-validates; this is the fast first line.
func (s *JobSpec) validate() error {
	if s.MeasureSlots == 0 {
		return fmt.Errorf("service: measure_slots must be > 0")
	}
	if s.Fabric.Hosts <= 0 || s.Fabric.Radix <= 1 {
		return fmt.Errorf("service: fabric needs hosts > 0 and radix > 1 (got %d, %d)",
			s.Fabric.Hosts, s.Fabric.Radix)
	}
	if _, err := newSchedulerFactory(s.Fabric.Scheduler, s.Fabric.Radix, s.Fabric.SchedParam, s.Traffic.Seed); err != nil {
		return err
	}
	if _, err := s.Traffic.trafficConfig(s.Fabric.Hosts); err != nil {
		return err
	}
	return nil
}

// buildEngine constructs the fabric and per-host generators the spec
// names. Both are freshly built per call, so a restore can rebuild the
// exact engine a checkpoint was taken from.
func (s *JobSpec) buildEngine() (*fabric.Fabric, []traffic.Generator, error) {
	x, err := fabric.NewXGFT(s.Fabric.Hosts, s.Fabric.Radix, s.Fabric.Levels)
	if err != nil {
		return nil, nil, err
	}
	newSched, err := newSchedulerFactory(s.Fabric.Scheduler, s.Fabric.Radix, s.Fabric.SchedParam, s.Traffic.Seed)
	if err != nil {
		return nil, nil, err
	}
	receivers := s.Fabric.Receivers
	if receivers == 0 {
		receivers = 2
	}
	f, err := fabric.New(fabric.Config{
		Network:        x,
		Receivers:      receivers,
		NewScheduler:   newSched,
		LinkDelaySlots: s.Fabric.LinkDelaySlots,
		InputCapacity:  s.Fabric.InputCapacity,
		EgressBuffered: s.Fabric.EgressBuffered,
		Shards:         s.Fabric.Shards,
	})
	if err != nil {
		return nil, nil, err
	}
	tcfg, err := s.Traffic.trafficConfig(s.Fabric.Hosts)
	if err != nil {
		return nil, nil, err
	}
	gens, err := traffic.Build(tcfg)
	if err != nil {
		return nil, nil, err
	}
	return f, gens, nil
}

// totalSlots is the job's warm-up + measurement timeline length.
func (s *JobSpec) totalSlots() uint64 { return s.WarmupSlots + s.MeasureSlots }

// drainBound is the drain budget with its default applied.
func (s *JobSpec) drainBound() uint64 {
	if s.DrainSlots > 0 {
		return s.DrainSlots
	}
	return 1 << 20
}

// batchKey groups jobs that exercise the same engine shape: the batcher
// coalesces equal-key jobs into one parallel.Run so a sweep campaign's
// points tick together. Traffic parameters and seeds are deliberately
// not part of the key — a sweep varies exactly those.
func (s *JobSpec) batchKey() string {
	fs := s.Fabric
	recv := fs.Receivers
	if recv == 0 {
		recv = 2
	}
	schedName := fs.Scheduler
	if schedName == "" {
		schedName = "flppr"
	}
	return fmt.Sprintf("%dx%d-l%d-r%d-%s%d-d%d-c%d-e%t-s%d",
		fs.Hosts, fs.Radix, fs.Levels, recv, schedName, fs.SchedParam,
		fs.LinkDelaySlots, fs.InputCapacity, fs.EgressBuffered, fs.Shards)
}

// canonicalJSON renders the spec in Go's deterministic field order, the
// form embedded in job checkpoints.
func (s *JobSpec) canonicalJSON() ([]byte, error) {
	return json.Marshal(s)
}
