// Package voq implements the electronic buffering around the bufferless
// optical crossbar: per-input Virtual Output Queues with two strict
// priority classes (control before data), ingress adapters that turn
// arrivals into scheduler requests, and egress queues fed by one or two
// receivers per port (§V dual-receiver architecture).
//
// VOQs are the paper's central architectural consequence: an optical
// packet switch has no internal buffers, so it is an input-queued switch
// and needs VOQs to defeat head-of-line blocking (§III, [17]).
package voq

import (
	"fmt"

	"repro/internal/bitrow"
	"repro/internal/packet"
	"repro/internal/units"
)

// FIFO is a simple cell queue with O(1) amortized push/pop.
type FIFO struct {
	cells []*packet.Cell
	head  int
}

// Len reports the number of queued cells.
func (f *FIFO) Len() int { return len(f.cells) - f.head }

// Push appends a cell.
func (f *FIFO) Push(c *packet.Cell) {
	//lint:ignore hotpath amortized O(1); backing array is cap-stable once queues hit their credit-bounded steady-state depth
	f.cells = append(f.cells, c)
}

// Pop removes and returns the oldest cell, or nil if empty.
func (f *FIFO) Pop() *packet.Cell {
	if f.Len() == 0 {
		return nil
	}
	c := f.cells[f.head]
	f.cells[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.cells) {
		n := copy(f.cells, f.cells[f.head:])
		f.cells = f.cells[:n]
		f.head = 0
	}
	return c
}

// Peek returns the oldest cell without removing it, or nil.
func (f *FIFO) Peek() *packet.Cell {
	if f.Len() == 0 {
		return nil
	}
	return f.cells[f.head]
}

// VOQSet is the virtual-output-queue array of one ingress adapter:
// one queue per (output, class).
type VOQSet struct {
	n int
	// queues[class][output]
	queues [2][]FIFO
	// committed[output] counts cells already promised to in-flight
	// pipelined matchings and not yet transmitted; pipelined schedulers
	// must not double-request them.
	committed []int
	depth     int // total cells across all queues
	// occ is the dense uncommitted-occupancy row: bit out is set iff
	// Uncommitted(out) > 0. Maintained in O(1) by every mutator so
	// demand boards can hand schedulers whole words instead of
	// re-deriving two FIFO lengths and a counter per (in, out) pair.
	// Derived state: checkpoint codecs rebuild it instead of saving it.
	occ []uint64
	// backlog[output] mirrors queues[0][out].Len()+queues[1][out].Len()
	// so the Backlog/Uncommitted hot reads touch one contiguous counter
	// array instead of two FIFO headers on separate cache lines. Derived
	// state, rebuilt on restore like occ.
	backlog []int
}

// NewVOQSet creates VOQs for a switch with n outputs.
func NewVOQSet(n int) *VOQSet {
	v := &VOQSet{n: n, committed: make([]int, n), occ: make([]uint64, bitrow.Words(n)), backlog: make([]int, n)}
	v.queues[0] = make([]FIFO, n)
	v.queues[1] = make([]FIFO, n)
	return v
}

// N reports the output count.
func (v *VOQSet) N() int { return v.n }

// syncOcc re-derives the occupancy bit of one output after a mutation —
// the only place the bit is ever written, so occ is exact by induction.
//
//osmosis:hotpath
//osmosis:shardsafe
func (v *VOQSet) syncOcc(out int) {
	bitrow.SetTo(v.occ, out, v.Backlog(out) > v.committed[out])
}

// Push enqueues a cell toward its destination queue.
//
//osmosis:shardsafe
func (v *VOQSet) Push(c *packet.Cell, out int) {
	v.queues[classIndex(c.Class)][out].Push(c)
	v.depth++
	v.backlog[out]++
	v.syncOcc(out)
}

// Backlog reports queued cells for an output across both classes.
//
//osmosis:hotpath
//osmosis:shardsafe
func (v *VOQSet) Backlog(out int) int {
	return v.backlog[out]
}

// Uncommitted reports cells for an output not yet promised to an
// in-flight matching; this is what a pipelined scheduler may request.
func (v *VOQSet) Uncommitted(out int) int {
	u := v.Backlog(out) - v.committed[out]
	if u < 0 {
		return 0
	}
	return u
}

// UncommittedAt reports whether Uncommitted(out) is positive, from the
// maintained occupancy bit — no FIFO-length re-derivation.
func (v *VOQSet) UncommittedAt(out int) bool { return bitrow.Has(v.occ, out) }

// UncommittedBits exposes the maintained uncommitted-occupancy row (bit
// out set iff Uncommitted(out) > 0). The words are live VOQ state —
// callers may read or AND-copy them but must never write them.
func (v *VOQSet) UncommittedBits() []uint64 { return v.occ }

// Commit records that one more cell for out has been promised a grant.
//
//osmosis:hotpath
//osmosis:shardsafe
func (v *VOQSet) Commit(out int) {
	v.committed[out]++
	v.syncOcc(out)
}

// Uncommit releases a promise (e.g. a matching slot went unused).
//
//osmosis:hotpath
//osmosis:shardsafe
func (v *VOQSet) Uncommit(out int) {
	if v.committed[out] > 0 {
		v.committed[out]--
		v.syncOcc(out)
	}
}

// Pop dequeues the next cell for out, control class first (strict
// priority, §IV), also releasing one commitment if any.
//
//osmosis:shardsafe
func (v *VOQSet) Pop(out int) *packet.Cell {
	var c *packet.Cell
	if v.queues[1][out].Len() > 0 {
		c = v.queues[1][out].Pop()
	} else {
		c = v.queues[0][out].Pop()
	}
	if c != nil {
		v.depth--
		v.backlog[out]--
		if v.committed[out] > 0 {
			v.committed[out]--
		}
		v.syncOcc(out)
	}
	return c
}

// Depth reports total cells queued across all outputs and classes.
func (v *VOQSet) Depth() int { return v.depth }

// HeadWait reports the age of the oldest head-of-line cell for out, or
// zero when empty; schedulers may use it for longest-wait policies.
func (v *VOQSet) HeadWait(out int, now units.Time) units.Time {
	var oldest *packet.Cell
	if c := v.queues[1][out].Peek(); c != nil {
		oldest = c
	}
	if c := v.queues[0][out].Peek(); c != nil && (oldest == nil || c.Injected < oldest.Injected) {
		oldest = c
	}
	if oldest == nil {
		return 0
	}
	return now - oldest.Injected
}

func classIndex(c packet.Class) int {
	if c == packet.Control {
		return 1
	}
	return 0
}

// Egress models one output adapter: up to Receivers cells may arrive per
// slot from the crossbar (the dual-receiver broadcast-and-select option
// gives two paths per output), queue them, and drain exactly one cell
// per slot onto the output line.
type Egress struct {
	// Receivers is the number of simultaneously usable receive paths.
	Receivers int
	// Capacity bounds the egress queue; zero means unbounded. When the
	// queue is full the egress withholds credits (remote flow control).
	Capacity int

	q        FIFO
	received uint64
	drained  uint64
}

// NewEgress creates an egress adapter with r receivers.
func NewEgress(r, capacity int) *Egress {
	if r < 1 {
		r = 1
	}
	return &Egress{Receivers: r, Capacity: capacity}
}

// SlotBudget reports how many cells the egress can accept this slot,
// respecting both receiver count and remaining queue space.
func (e *Egress) SlotBudget() int {
	b := e.Receivers
	if e.Capacity > 0 {
		room := e.Capacity - e.q.Len()
		if room < b {
			b = room
		}
	}
	if b < 0 {
		return 0
	}
	return b
}

// Receive accepts a cell from the crossbar.
//
//osmosis:shardsafe
func (e *Egress) Receive(c *packet.Cell) {
	e.q.Push(c)
	e.received++
}

// Drain removes the cell to transmit on the output line this slot, or
// nil when idle.
//
//osmosis:shardsafe
func (e *Egress) Drain() *packet.Cell {
	c := e.q.Pop()
	if c != nil {
		e.drained++
	}
	return c
}

// Queued reports the egress queue occupancy.
func (e *Egress) Queued() int { return e.q.Len() }

// Received reports total cells accepted from the crossbar.
func (e *Egress) Received() uint64 { return e.received }

// Drained reports total cells put on the line.
func (e *Egress) Drained() uint64 { return e.drained }

// String summarizes the egress state.
func (e *Egress) String() string {
	return fmt.Sprintf("egress{rx=%d q=%d drained=%d}", e.received, e.q.Len(), e.drained)
}
