package voq

import (
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/packet"
	"repro/internal/units"
)

func roundTripVOQ(t *testing.T, v *VOQSet) *VOQSet {
	t.Helper()
	var buf strings.Builder
	e := ckpt.NewEncoder(&buf)
	v.SaveState(e)
	if err := e.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}
	fresh := NewVOQSet(v.N())
	d, err := ckpt.NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("decoder: %v", err)
	}
	if err := fresh.LoadState(d); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return fresh
}

func TestVOQSetCheckpointRoundTrip(t *testing.T) {
	alloc := packet.NewAllocator()
	v := NewVOQSet(4)
	// Mixed population: both classes, several outputs, a few pops so
	// FIFO heads are nonzero, plus commitments.
	for i := 0; i < 20; i++ {
		out := i % 4
		class := packet.Data
		if i%3 == 0 {
			class = packet.Control
		}
		v.Push(alloc.New(0, out, class, units.Time(i)), out)
	}
	v.Pop(0)
	v.Pop(1)
	v.Commit(2)
	v.Commit(2)
	v.Commit(3)

	fresh := roundTripVOQ(t, v)
	if fresh.Depth() != v.Depth() {
		t.Fatalf("depth %d, want %d", fresh.Depth(), v.Depth())
	}
	for out := 0; out < 4; out++ {
		if fresh.Backlog(out) != v.Backlog(out) || fresh.Uncommitted(out) != v.Uncommitted(out) {
			t.Fatalf("output %d: backlog/uncommitted %d/%d, want %d/%d",
				out, fresh.Backlog(out), fresh.Uncommitted(out), v.Backlog(out), v.Uncommitted(out))
		}
	}
	// Drain both completely: identical cells in identical order.
	for out := 0; out < 4; out++ {
		for {
			a, b := v.Pop(out), fresh.Pop(out)
			if (a == nil) != (b == nil) {
				t.Fatalf("output %d: drain length diverged", out)
			}
			if a == nil {
				break
			}
			if a.ID != b.ID || a.Seq != b.Seq || a.Class != b.Class || a.Created != b.Created {
				t.Fatalf("output %d: cell diverged: %v vs %v", out, a, b)
			}
		}
	}
}

func TestEgressCheckpointRoundTrip(t *testing.T) {
	alloc := packet.NewAllocator()
	eg := NewEgress(2, 0)
	for i := 0; i < 7; i++ {
		eg.Receive(alloc.New(1, 2, packet.Data, units.Time(i)))
	}
	eg.Drain()
	eg.Drain()

	var buf strings.Builder
	enc := ckpt.NewEncoder(&buf)
	eg.SaveState(enc)
	if err := enc.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}
	fresh := NewEgress(2, 0)
	d, err := ckpt.NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("decoder: %v", err)
	}
	if err := fresh.LoadState(d); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if fresh.Received() != eg.Received() || fresh.Drained() != eg.Drained() || fresh.Queued() != eg.Queued() {
		t.Fatalf("counters diverged: %v vs %v", fresh, eg)
	}
	for {
		a, b := eg.Drain(), fresh.Drain()
		if (a == nil) != (b == nil) {
			t.Fatal("drain length diverged")
		}
		if a == nil {
			break
		}
		if a.ID != b.ID {
			t.Fatalf("cell order diverged: %v vs %v", a, b)
		}
	}
}

func TestVOQLoadRejectsWrongShape(t *testing.T) {
	v := NewVOQSet(4)
	var buf strings.Builder
	e := ckpt.NewEncoder(&buf)
	v.SaveState(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	other := NewVOQSet(8)
	d, err := ckpt.NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(d); err == nil {
		t.Fatal("4-output VOQ checkpoint restored into 8-output set")
	}
}
