// Checkpoint codecs for the electronic buffering: VOQ contents (with
// the pipelined schedulers' commitment counters) and egress queues. Cell
// order within every queue is preserved exactly — it is the order the
// restored run will transmit in.
package voq

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/packet"
)

// SaveState serializes the VOQ array: per-output commitment counters and
// every queued cell in FIFO order. Only non-empty entries are written.
func (v *VOQSet) SaveState(e *ckpt.Encoder) {
	e.Begin("voqs")
	e.Put("voqset", ckpt.Int(int64(v.n)))
	for out := 0; out < v.n; out++ {
		if c := v.committed[out]; c != 0 {
			e.Put("comm", ckpt.Int(int64(out)), ckpt.Int(int64(c)))
		}
	}
	for class := 0; class < 2; class++ {
		for out := 0; out < v.n; out++ {
			q := &v.queues[class][out]
			if q.Len() == 0 {
				continue
			}
			e.Put("q", ckpt.Int(int64(class)), ckpt.Int(int64(out)), ckpt.Int(int64(q.Len())))
			for i := q.head; i < len(q.cells); i++ {
				packet.SaveCell(e, q.cells[i])
			}
		}
	}
	e.End("voqs")
}

// LoadState restores a VOQ array saved by SaveState into v, which must
// be freshly constructed (empty) with the same output count.
func (v *VOQSet) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("voqs"); err != nil {
		return err
	}
	r := d.Record("voqset")
	n := r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	if n != v.n {
		return fmt.Errorf("voq: checkpoint VOQ set has %d outputs, live set %d", n, v.n)
	}
	if v.depth != 0 {
		return fmt.Errorf("voq: LoadState into non-empty VOQ set (depth %d)", v.depth)
	}
	for !d.AtEnd("voqs") {
		switch key := d.PeekKey(); key {
		case "comm":
			cr := d.Record("comm")
			out, c := cr.IntAsInt(), cr.IntAsInt()
			if err := cr.Done(); err != nil {
				return err
			}
			if out < 0 || out >= v.n || c < 0 {
				return fmt.Errorf("voq: checkpoint commitment %d at output %d out of range", c, out)
			}
			v.committed[out] = c
		case "q":
			qr := d.Record("q")
			class, out, count := qr.IntAsInt(), qr.IntAsInt(), qr.IntAsInt()
			if err := qr.Done(); err != nil {
				return err
			}
			if class < 0 || class > 1 || out < 0 || out >= v.n || count <= 0 {
				return fmt.Errorf("voq: checkpoint queue (%d,%d) x%d out of range", class, out, count)
			}
			for i := 0; i < count; i++ {
				c, err := packet.LoadCell(d)
				if err != nil {
					return err
				}
				if classIndex(c.Class) != class {
					return fmt.Errorf("voq: cell %d class %v in class-%d queue", c.ID, c.Class, class)
				}
				v.queues[class][out].Push(c)
				v.depth++
			}
		default:
			return fmt.Errorf("voq: unexpected record %q in VOQ checkpoint", key)
		}
	}
	// The backlog counters and occupancy row are derived state: rebuild
	// them from the restored queues and commitment counters instead of
	// trusting (or storing) serialized copies — the checkpoint format
	// stays oblivious to both.
	for out := 0; out < v.n; out++ {
		v.backlog[out] = v.queues[0][out].Len() + v.queues[1][out].Len()
		v.syncOcc(out)
	}
	return d.End("voqs")
}

// SaveState serializes the egress adapter: line counters and the queued
// cells in drain order.
func (e *Egress) SaveState(enc *ckpt.Encoder) {
	enc.Begin("egress")
	enc.Put("eg", ckpt.Uint(e.received), ckpt.Uint(e.drained), ckpt.Int(int64(e.q.Len())))
	for i := e.q.head; i < len(e.q.cells); i++ {
		packet.SaveCell(enc, e.q.cells[i])
	}
	enc.End("egress")
}

// LoadState restores an egress adapter saved by SaveState into e, which
// must be freshly constructed (empty). Receivers/Capacity are
// configuration, not state, and are left untouched.
func (e *Egress) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("egress"); err != nil {
		return err
	}
	r := d.Record("eg")
	received, drained, queued := r.Uint(), r.Uint(), r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	if e.q.Len() != 0 {
		return fmt.Errorf("voq: LoadState into non-empty egress (%d queued)", e.q.Len())
	}
	if queued < 0 {
		return fmt.Errorf("voq: checkpoint egress queue length %d", queued)
	}
	if e.Capacity > 0 && queued > e.Capacity {
		return fmt.Errorf("voq: checkpoint egress holds %d cells, capacity %d", queued, e.Capacity)
	}
	e.received = received
	e.drained = drained
	for i := 0; i < queued; i++ {
		c, err := packet.LoadCell(d)
		if err != nil {
			return err
		}
		e.q.Push(c)
	}
	return d.End("egress")
}
