package voq

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestFIFOOrder(t *testing.T) {
	var f FIFO
	if f.Pop() != nil || f.Peek() != nil {
		t.Error("empty FIFO should return nil")
	}
	cells := make([]*packet.Cell, 200)
	for i := range cells {
		cells[i] = &packet.Cell{ID: uint64(i)}
		f.Push(cells[i])
	}
	if f.Len() != 200 {
		t.Errorf("len %d", f.Len())
	}
	for i := range cells {
		if got := f.Pop(); got != cells[i] {
			t.Fatalf("pop %d: got %v", i, got)
		}
	}
}

func TestFIFOCompaction(t *testing.T) {
	var f FIFO
	// Interleave pushes and pops to force head compaction.
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			f.Push(&packet.Cell{ID: uint64(next)})
			next++
		}
		for i := 0; i < 10; i++ {
			c := f.Pop()
			if c == nil || c.ID != uint64(want) {
				t.Fatalf("round %d: got %v want %d", round, c, want)
			}
			want++
		}
	}
	if f.Len() != 0 {
		t.Errorf("len %d after drain", f.Len())
	}
}

func TestVOQPriority(t *testing.T) {
	v := NewVOQSet(4)
	d := &packet.Cell{ID: 1, Class: packet.Data}
	c := &packet.Cell{ID: 2, Class: packet.Control}
	v.Push(d, 2)
	v.Push(c, 2)
	if got := v.Pop(2); got != c {
		t.Errorf("control must pop first, got %v", got)
	}
	if got := v.Pop(2); got != d {
		t.Errorf("then data, got %v", got)
	}
}

func TestVOQBacklogAndDepth(t *testing.T) {
	v := NewVOQSet(4)
	v.Push(&packet.Cell{}, 0)
	v.Push(&packet.Cell{}, 0)
	v.Push(&packet.Cell{Class: packet.Control}, 3)
	if v.Backlog(0) != 2 || v.Backlog(3) != 1 || v.Backlog(1) != 0 {
		t.Errorf("backlogs %d/%d/%d", v.Backlog(0), v.Backlog(3), v.Backlog(1))
	}
	if v.Depth() != 3 {
		t.Errorf("depth %d", v.Depth())
	}
	v.Pop(0)
	if v.Depth() != 2 {
		t.Errorf("depth after pop %d", v.Depth())
	}
}

func TestVOQCommitAccounting(t *testing.T) {
	v := NewVOQSet(2)
	v.Push(&packet.Cell{}, 1)
	v.Push(&packet.Cell{}, 1)
	if v.Uncommitted(1) != 2 {
		t.Errorf("uncommitted %d", v.Uncommitted(1))
	}
	v.Commit(1)
	if v.Uncommitted(1) != 1 {
		t.Errorf("after commit: %d", v.Uncommitted(1))
	}
	v.Commit(1)
	v.Commit(1) // over-commit beyond backlog
	if v.Uncommitted(1) != 0 {
		t.Errorf("over-committed should clamp at 0, got %d", v.Uncommitted(1))
	}
	v.Uncommit(1)
	v.Pop(1) // pop releases one commitment too
	if v.Uncommitted(1) != 0 {
		t.Errorf("after pop: %d", v.Uncommitted(1))
	}
}

func TestVOQCommitNeverExceedsBacklogProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		v := NewVOQSet(3)
		for _, op := range ops {
			out := int(op) % 3
			switch (op / 3) % 4 {
			case 0:
				v.Push(&packet.Cell{}, out)
			case 1:
				if v.Uncommitted(out) > 0 {
					v.Commit(out)
				}
			case 2:
				v.Pop(out)
			case 3:
				v.Uncommit(out)
			}
			if v.Uncommitted(out) < 0 || v.Uncommitted(out) > v.Backlog(out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEgressBudgetAndDrain(t *testing.T) {
	e := NewEgress(2, 3)
	if e.SlotBudget() != 2 {
		t.Errorf("budget %d", e.SlotBudget())
	}
	e.Receive(&packet.Cell{ID: 1})
	e.Receive(&packet.Cell{ID: 2})
	if e.SlotBudget() != 1 {
		t.Errorf("budget with 1 slot left: %d", e.SlotBudget())
	}
	e.Receive(&packet.Cell{ID: 3})
	if e.SlotBudget() != 0 {
		t.Errorf("budget when full: %d", e.SlotBudget())
	}
	if c := e.Drain(); c == nil || c.ID != 1 {
		t.Errorf("drain order wrong: %v", c)
	}
	if e.Received() != 3 || e.Drained() != 1 || e.Queued() != 2 {
		t.Errorf("counters rx=%d drained=%d q=%d", e.Received(), e.Drained(), e.Queued())
	}
}

func TestEgressUnbounded(t *testing.T) {
	e := NewEgress(1, 0)
	for i := 0; i < 100; i++ {
		e.Receive(&packet.Cell{})
	}
	if e.SlotBudget() != 1 {
		t.Errorf("unbounded egress budget %d", e.SlotBudget())
	}
}

func TestHeadWait(t *testing.T) {
	v := NewVOQSet(2)
	if v.HeadWait(0, 100) != 0 {
		t.Error("empty queue should report zero wait")
	}
	v.Push(&packet.Cell{Injected: 10}, 0)
	v.Push(&packet.Cell{Injected: 20}, 0)
	if got := v.HeadWait(0, 50); got != 40 {
		t.Errorf("head wait %v", got)
	}
}
