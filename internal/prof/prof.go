// Package prof wires the standard pprof/trace collectors into the
// command-line tools behind three flags, so a hot-path regression can be
// profiled with nothing but the repo:
//
//	experiments -quick -cpuprofile cpu.out -memprofile mem.out
//	osmosis -load 0.9 -trace trace.out
//	go tool pprof cpu.out        # or: go tool trace trace.out
//
// Profiling only observes the run; it never changes simulation output —
// determinism contracts (byte-identical experiment records) hold with
// and without it.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three output paths; empty means off.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register declares -cpuprofile, -memprofile, and -trace on the default
// flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins the requested collectors and returns a stop function to
// defer in main; stop flushes the memory profile and closes all files.
// On any setup error, nothing is left running.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			_ = traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			_ = cpuFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			_ = traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: start trace: %w", err)
		}
	}
	mem := f.MemProfile
	return func() {
		cleanup()
		if mem != "" {
			out, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(out); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			_ = out.Close()
		}
	}, nil
}
