package link

import (
	"testing"

	"repro/internal/sim"
)

func TestControlChannelConvergesAfterLoss(t *testing.T) {
	cc := NewControlChannel(8, 0.2, 3)
	rng := sim.NewRNG(4)
	for cycle := 0; cycle < 2000; cycle++ {
		// Random enqueues.
		if rng.Bernoulli(0.7) {
			if err := cc.Enqueue(rng.Intn(8), 1); err != nil {
				t.Fatal(err)
			}
		}
		cc.CycleRequest()
		// Scheduler grants based on its (possibly stale) view.
		for out := 0; out < 8; out++ {
			if cc.SchedulerView(out) > 0 && rng.Bernoulli(0.5) {
				cc.IssueGrant(out)
			}
		}
	}
	// Stop traffic; a handful of clean snapshot cycles must re-converge
	// the views even though 20% of all messages were lost.
	for i := 0; i < 100 && !cc.Converged(); i++ {
		cc.CycleRequest()
	}
	if !cc.Converged() {
		t.Error("scheduler view failed to converge after losses")
	}
	if cc.RequestsLost == 0 || cc.GrantsLost == 0 {
		t.Error("loss process did not exercise the protocol")
	}
	t.Logf("requests sent/lost %d/%d, grants sent/lost %d/%d, recovered %d",
		cc.RequestsSent, cc.RequestsLost, cc.GrantsSent, cc.GrantsLost, cc.GrantsRecovered)
}

func TestControlChannelLossFree(t *testing.T) {
	cc := NewControlChannel(4, 0, 1)
	if err := cc.Enqueue(2, 5); err != nil {
		t.Fatal(err)
	}
	cc.CycleRequest()
	if !cc.Converged() {
		t.Error("loss-free snapshot should converge immediately")
	}
	if cc.SchedulerView(2) != 5 {
		t.Errorf("view %d", cc.SchedulerView(2))
	}
	for i := 0; i < 5; i++ {
		if !cc.IssueGrant(2) {
			t.Fatal("loss-free grant dropped")
		}
	}
	cc.CycleRequest()
	if cc.AdapterCount(2) != 0 || !cc.Converged() {
		t.Errorf("adapter count %d after 5 grants", cc.AdapterCount(2))
	}
}

func TestControlChannelLostGrantRecovered(t *testing.T) {
	// Force a deterministic lost grant by probability 1, then heal.
	cc := NewControlChannel(2, 1, 2) // every message lost
	cc.Enqueue(0, 1)
	cc.IssueGrant(0) // lost: adapter never dequeues
	if cc.AdapterCount(0) != 1 {
		t.Error("lost grant should leave the cell queued at the adapter")
	}
	// Scheduler's optimistic view decremented; a clean snapshot must
	// restore it and record the recovery.
	cc.lossPct = 0
	cc.CycleRequest()
	if cc.SchedulerView(0) != 1 {
		t.Errorf("view %d after healing snapshot", cc.SchedulerView(0))
	}
	if cc.GrantsRecovered != 1 {
		t.Errorf("grants recovered %d", cc.GrantsRecovered)
	}
}

func TestControlChannelValidation(t *testing.T) {
	cc := NewControlChannel(2, 0, 1)
	if err := cc.Enqueue(5, 1); err == nil {
		t.Error("out-of-range output accepted")
	}
}
