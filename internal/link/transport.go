package link

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Cell transport: the hop-by-hop reliable link carrying actual fabric
// cells, as between two stages of the multistage fabric (§IV.C). A cell
// serializes into one link frame — header fields plus the 256-byte
// payload — which the FEC codec splits into blocks; detected-
// uncorrectable blocks trigger go-back-N retransmission, so cells cross
// the hop lossless and in order despite the raw optical BER.

// cellWireBytes is the serialized size: 64-byte header area (ID, src,
// dst, class, seq, created) padded to the FEC data-block grid, plus a
// fixed 256-byte payload area.
const (
	cellHeaderBytes  = 64
	cellPayloadBytes = 256
	cellWireBytes    = cellHeaderBytes + cellPayloadBytes
)

// MarshalCell serializes a cell for link transport. Payloads longer
// than 256 bytes are rejected; shorter ones are zero-padded.
func MarshalCell(c *packet.Cell) ([]byte, error) {
	if len(c.Payload) > cellPayloadBytes {
		return nil, fmt.Errorf("link: payload %d bytes exceeds %d", len(c.Payload), cellPayloadBytes)
	}
	buf := make([]byte, cellWireBytes)
	putUint64(buf[0:], c.ID)
	putUint64(buf[8:], uint64(int64(c.Src)))
	putUint64(buf[16:], uint64(int64(c.Dst)))
	buf[24] = byte(c.Class)
	putUint64(buf[32:], c.Seq)
	putUint64(buf[40:], uint64(c.Created))
	buf[48] = byte(len(c.Payload))
	if len(c.Payload) == cellPayloadBytes {
		buf[48] = 0
		buf[49] = 1 // full-payload marker
	}
	copy(buf[cellHeaderBytes:], c.Payload)
	return buf, nil
}

// UnmarshalCell inverts MarshalCell.
func UnmarshalCell(buf []byte) (*packet.Cell, error) {
	if len(buf) != cellWireBytes {
		return nil, fmt.Errorf("link: cell frame %d bytes, want %d", len(buf), cellWireBytes)
	}
	c := &packet.Cell{
		ID:      getUint64(buf[0:]),
		Src:     int(int64(getUint64(buf[8:]))),
		Dst:     int(int64(getUint64(buf[16:]))),
		Class:   packet.Class(buf[24]),
		Seq:     getUint64(buf[32:]),
		Created: units.Time(getUint64(buf[40:])),
	}
	n := int(buf[48])
	if buf[49] == 1 {
		n = cellPayloadBytes
	}
	if n > 0 {
		c.Payload = append([]byte(nil), buf[cellHeaderBytes:cellHeaderBytes+n]...)
	}
	return c, nil
}

// CellTransport couples a ReliableLink to cell semantics: Send queues
// cells, Deliver hands back reconstructed cells in order.
type CellTransport struct {
	link *ReliableLink
	// Deliver receives each transported cell, in order.
	Deliver func(c *packet.Cell)
	// Sent counts cells queued; Received counts cells delivered.
	Sent, Received uint64
	// FramingErrors counts frames that decoded cleanly yet failed to
	// parse as cells — a framing bug in the stack, not channel noise.
	FramingErrors uint64
	// failure latches the first framing fault for Err.
	failure error
}

// NewCellTransport builds a transport over forward/reverse channels.
func NewCellTransport(k *sim.Kernel, fwd, rev *Channel, codec Codec, window int, timeout units.Time) *CellTransport {
	t := &CellTransport{}
	t.link = NewReliableLink(k, fwd, rev, codec, window, timeout)
	t.link.Deliver = func(f Frame) {
		c, err := UnmarshalCell(f.Payload)
		if err != nil {
			// A frame that decodes cleanly but fails to parse indicates
			// a framing bug, not channel noise; drop it and latch the
			// fault so Err surfaces it to the caller.
			t.FramingErrors++
			if t.failure == nil {
				t.failure = fmt.Errorf("link: cell transport framing: %w", err)
			}
			return
		}
		t.Received++
		if t.Deliver != nil {
			t.Deliver(c)
		}
	}
	return t
}

// Err reports the first transport fault (a framing error on receive or
// an unrecoverable fault on the underlying link), or nil.
func (t *CellTransport) Err() error {
	if t.failure != nil {
		return t.failure
	}
	return t.link.Err()
}

// Send queues a cell for reliable transport.
func (t *CellTransport) Send(c *packet.Cell) error {
	buf, err := MarshalCell(c)
	if err != nil {
		return err
	}
	if err := t.link.Send(buf); err != nil {
		return err
	}
	t.Sent++
	return nil
}

// Done reports whether every queued cell has been acknowledged.
func (t *CellTransport) Done() bool { return t.link.Done() }

// Stats exposes the underlying link counters.
func (t *CellTransport) Stats() (sent, retransmitted, corruptDropped uint64) {
	return t.link.Sent, t.link.Retransmitted, t.link.CorruptDropped
}
