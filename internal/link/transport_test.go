package link

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestMarshalCellRoundTripProperty(t *testing.T) {
	f := func(id, seq uint64, src, dst uint16, cls bool, payloadLen uint16, created int64) bool {
		c := &packet.Cell{
			ID:      id,
			Src:     int(src),
			Dst:     int(dst),
			Seq:     seq,
			Created: units.Time(created) & (1<<62 - 1),
		}
		if cls {
			c.Class = packet.Control
		}
		n := int(payloadLen) % (cellPayloadBytes + 1)
		if n > 0 {
			c.Payload = make([]byte, n)
			for i := range c.Payload {
				c.Payload[i] = byte(i * 3)
			}
		}
		buf, err := MarshalCell(c)
		if err != nil {
			return false
		}
		back, err := UnmarshalCell(buf)
		if err != nil {
			return false
		}
		return back.ID == c.ID && back.Src == c.Src && back.Dst == c.Dst &&
			back.Class == c.Class && back.Seq == c.Seq && back.Created == c.Created &&
			bytes.Equal(back.Payload, c.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMarshalCellRejectsOversize(t *testing.T) {
	c := &packet.Cell{Payload: make([]byte, cellPayloadBytes+1)}
	if _, err := MarshalCell(c); err == nil {
		t.Error("oversize payload accepted")
	}
	if _, err := UnmarshalCell(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
}

// TestCellTransportOverNoisyHop carries a stream of sequenced cells
// across a high-BER hop and verifies lossless in-order delivery with
// intact payloads — the §IV.C inter-stage link contract.
func TestCellTransportOverNoisyHop(t *testing.T) {
	k := sim.New()
	fwd := NewChannel(250*units.Nanosecond, units.OSMOSISPortRate, 2e-4, 1)
	rev := NewChannel(250*units.Nanosecond, units.OSMOSISPortRate, 2e-4, 2)
	tr := NewCellTransport(k, fwd, rev, Codec{Interleave: 5}, 16, 3*units.Microsecond)

	order := packet.NewOrderChecker()
	var got []*packet.Cell
	tr.Deliver = func(c *packet.Cell) {
		got = append(got, c)
		order.Deliver(c)
	}

	alloc := packet.NewAllocator()
	rng := sim.NewRNG(7)
	const cells = 400
	want := make([]*packet.Cell, 0, cells)
	for i := 0; i < cells; i++ {
		c := alloc.New(3, 9, packet.Data, units.Time(i)*51200)
		c.Payload = make([]byte, cellPayloadBytes)
		for j := range c.Payload {
			c.Payload[j] = byte(rng.Uint64())
		}
		want = append(want, c)
		if err := tr.Send(c); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(units.Second)
	if !tr.Done() {
		t.Fatal("transport did not drain")
	}
	if len(got) != cells {
		t.Fatalf("delivered %d of %d cells", len(got), cells)
	}
	if order.Violations() != 0 {
		t.Errorf("order violations: %d", order.Violations())
	}
	for i, c := range got {
		if c.ID != want[i].ID || !bytes.Equal(c.Payload, want[i].Payload) {
			t.Fatalf("cell %d corrupted in transport", i)
		}
	}
	_, retx, dropped := tr.Stats()
	if retx == 0 && dropped == 0 {
		t.Error("BER too low to exercise the repair path")
	}
	t.Logf("cells %d, retransmitted frames %d, FEC-dropped %d", cells, retx, dropped)
}
