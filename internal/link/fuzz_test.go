package link

import (
	"testing"

	"repro/internal/fec"
	"repro/internal/packet"
)

// FuzzCodecDecode feeds arbitrary wire bytes to the frame codec: no
// panics, and aligned frames always produce a payload of the right size
// regardless of corruption.
func FuzzCodecDecode(f *testing.F) {
	cd := Codec{Interleave: 4}
	clean, _ := cd.Encode(make([]byte, 4*fec.DataSymbols))
	f.Add(clean)
	f.Add(make([]byte, fec.BlockSymbols))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, wire []byte) {
		res, err := cd.Decode(append([]byte(nil), wire...))
		if len(wire)%fec.BlockSymbols != 0 {
			if err == nil {
				t.Fatalf("unaligned wire of %d bytes accepted", len(wire))
			}
			return
		}
		if err != nil {
			t.Fatalf("aligned wire errored: %v", err)
		}
		wantBlocks := len(wire) / fec.BlockSymbols
		if len(res.Payload) != wantBlocks*fec.DataSymbols {
			t.Fatalf("payload %d bytes for %d blocks", len(res.Payload), wantBlocks)
		}
		if res.Corrected+res.Detected > wantBlocks {
			t.Fatalf("accounting: corrected %d + detected %d > %d blocks",
				res.Corrected, res.Detected, wantBlocks)
		}
	})
}

// FuzzUnmarshalCell: arbitrary bytes never panic the cell parser.
func FuzzUnmarshalCell(f *testing.F) {
	c, _ := MarshalCell(&packet.Cell{ID: 7, Src: 1, Dst: 2, Payload: []byte{9, 9}})
	f.Add(c)
	f.Add(make([]byte, cellWireBytes))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, buf []byte) {
		cell, err := UnmarshalCell(append([]byte(nil), buf...))
		if len(buf) != cellWireBytes {
			if err == nil {
				t.Fatalf("frame of %d bytes accepted", len(buf))
			}
			return
		}
		if err != nil {
			t.Fatalf("sized frame errored: %v", err)
		}
		if cell == nil || len(cell.Payload) > cellPayloadBytes {
			t.Fatal("parsed cell invalid")
		}
	})
}
