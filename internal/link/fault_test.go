package link

import (
	"bytes"
	"testing"

	"repro/internal/fec"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestChannelBurstBER(t *testing.T) {
	c := NewChannel(units.Nanosecond, units.OSMOSISPortRate, 1e-12, 7)
	if c.ActiveBER() != 1e-12 {
		t.Fatalf("healthy ActiveBER %g", c.ActiveBER())
	}
	c.SetBurst(1e-3)
	if c.ActiveBER() != 1e-3 {
		t.Errorf("burst ActiveBER %g, want 1e-3", c.ActiveBER())
	}
	// During the burst the realized error rate tracks the burst BER, not
	// the raw one.
	data := make([]byte, 1<<16)
	c.Corrupt(data)
	if c.Flips() < 100 {
		t.Errorf("burst over %d bits injected only %d flips", c.BitsSent(), c.Flips())
	}
	c.ClearBurst()
	if c.ActiveBER() != 1e-12 {
		t.Errorf("cleared ActiveBER %g, want raw 1e-12", c.ActiveBER())
	}
	flips := c.Flips()
	c.Corrupt(data)
	if c.Flips() != flips {
		t.Errorf("healthy channel at 1e-12 flipped %d bits in 64 KiB", c.Flips()-flips)
	}
}

// TestReliableLinkSurvivesBERBurst: an error burst on an otherwise
// clean span drives FEC uncorrectables into the go-back-N layer, which
// absorbs them — delivery stays lossless and in order, paid for in
// retransmissions. This is the link-level half of the graceful
// degradation story.
func TestReliableLinkSurvivesBERBurst(t *testing.T) {
	k := sim.New()
	fwd := NewChannel(50*units.Nanosecond, units.OSMOSISPortRate, 0, 11)
	rev := NewChannel(50*units.Nanosecond, units.OSMOSISPortRate, 0, 12)
	l := NewReliableLink(k, fwd, rev, Codec{}, 8, 2*units.Microsecond)
	var got [][]byte
	l.Deliver = func(f Frame) {
		got = append(got, append([]byte(nil), f.Payload...))
	}
	rng := sim.NewRNG(sim.DeriveSeed(99, 1))
	var want [][]byte
	send := func(n int) {
		for i := 0; i < n; i++ {
			p := make([]byte, 2*fec.DataSymbols)
			for j := range p {
				p[j] = byte(rng.Uint64())
			}
			want = append(want, p)
			if err := l.Send(p); err != nil {
				t.Fatal(err)
			}
		}
		k.Run(units.Second)
		if !l.Done() {
			t.Fatalf("link not drained: in flight %d, err %v", l.InFlight(), l.Err())
		}
	}

	send(50) // clean warmup
	if l.Retransmitted != 0 {
		t.Fatalf("clean span retransmitted %d frames", l.Retransmitted)
	}

	fwd.SetBurst(5e-4) // burst: heavy enough to defeat the FEC regularly
	send(200)
	burstRetx := l.Retransmitted
	if burstRetx == 0 {
		t.Error("burst BER never forced a retransmission; fault not exercised")
	}

	fwd.ClearBurst() // recovery
	send(50)
	if l.Retransmitted != burstRetx {
		t.Errorf("retransmissions continued after burst cleared: %d -> %d", burstRetx, l.Retransmitted)
	}

	if len(got) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d corrupted or out of order", i)
		}
	}
	t.Logf("burst retx=%d corruptDropped=%d", burstRetx, l.CorruptDropped)
}
