// Package link models the serial optical links between fabric elements:
// bit-error injection at the raw optical BER, FEC framing on top
// (internal/fec), burst-mode receiver phase acquisition, and the
// hop-by-hop hardware retransmission layer that takes the user BER from
// the FEC's 1e-17 to better than 1e-21 (§IV.C). A sequence-numbered
// reliable control channel (ref [19]) protects the request/grant
// messages between adapters and the scheduler.
package link

import (
	"fmt"
	"math"

	"repro/internal/fec"
	"repro/internal/sim"
	"repro/internal/units"
)

// Channel is a unidirectional serial optical link with propagation
// delay and independent random bit errors at a configured raw BER.
type Channel struct {
	// Delay is the one-way time of flight.
	Delay units.Time
	// Rate is the serial line rate.
	Rate units.Bandwidth
	// RawBER is the per-bit corruption probability in the healthy state.
	RawBER float64

	// burstBER, when burst is set, replaces RawBER — an injected error
	// burst (fault campaign) or a degraded span.
	burstBER float64
	burst    bool

	rng      *sim.RNG
	bitsSent uint64
	flips    uint64
}

// NewChannel builds a channel; seed drives the error process.
func NewChannel(delay units.Time, rate units.Bandwidth, rawBER float64, seed uint64) *Channel {
	return &Channel{Delay: delay, Rate: rate, RawBER: rawBER, rng: sim.NewRNG(seed)}
}

// Transit reports the arrival time of a frame of n bytes sent at t.
func (c *Channel) Transit(t units.Time, nBytes int) units.Time {
	return t + c.Delay + units.TransmissionTime(nBytes, c.Rate)
}

// SetBurst raises the channel's error rate to ber until ClearBurst —
// the BER-burst fault that drives FEC uncorrectables into the
// retransmission layer. The error process keeps consuming the same RNG
// stream, so a burst changes the statistics, not the stream identity.
func (c *Channel) SetBurst(ber float64) {
	c.burstBER = ber
	c.burst = true
}

// ClearBurst restores the healthy RawBER.
func (c *Channel) ClearBurst() {
	c.burst = false
	c.burstBER = 0
}

// ActiveBER reports the error rate currently applied to traffic.
func (c *Channel) ActiveBER() float64 {
	if c.burst {
		return c.burstBER
	}
	return c.RawBER
}

// Corrupt applies the channel's error process to a copy of data.
//
// For the tiny BERs of real optics, per-bit sampling would almost never
// flip anything; the geometric inter-error gap sampling below is exact
// and O(errors), so simulations can run at true raw BERs or at elevated
// rates for stress tests.
func (c *Channel) Corrupt(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	nbits := uint64(len(data)) * 8
	c.bitsSent += nbits
	if c.ActiveBER() <= 0 || nbits == 0 {
		return out
	}
	// Sample the position of each error as a geometric gap.
	pos := uint64(0)
	for {
		gap := c.geometricGap()
		pos += gap
		if pos >= nbits {
			break
		}
		out[pos/8] ^= 1 << (pos % 8)
		c.flips++
		pos++
	}
	return out
}

// geometricGap draws the number of clean bits before the next error.
func (c *Channel) geometricGap() uint64 {
	u := c.rng.Float64()
	for u == 0 {
		u = c.rng.Float64()
	}
	// Inverse-CDF of the geometric distribution with the active BER.
	g := int64(logFloat(u) / log1mFloat(c.ActiveBER()))
	if g < 0 {
		return 0
	}
	return uint64(g)
}

// BitsSent and Flips expose the realized error statistics.
func (c *Channel) BitsSent() uint64 { return c.bitsSent }

// Flips reports how many bit errors the channel injected.
func (c *Channel) Flips() uint64 { return c.flips }

// MeasuredBER reports the realized bit-error rate.
func (c *Channel) MeasuredBER() float64 {
	if c.bitsSent == 0 {
		return 0
	}
	return float64(c.flips) / float64(c.bitsSent)
}

// Codec frames payloads into interleaved FEC blocks for a Channel.
type Codec struct {
	Interleave int
}

// Encode splits payload (a multiple of fec.DataSymbols bytes) into FEC
// blocks, encodes each and interleaves the result for the wire.
func (cd Codec) Encode(payload []byte) ([]byte, error) {
	if len(payload)%fec.DataSymbols != 0 {
		return nil, fmt.Errorf("link: payload %d bytes not a multiple of %d", len(payload), fec.DataSymbols)
	}
	nblocks := len(payload) / fec.DataSymbols
	coded := make([]byte, 0, nblocks*fec.BlockSymbols)
	for b := 0; b < nblocks; b++ {
		blk, err := fec.Encode(payload[b*fec.DataSymbols : (b+1)*fec.DataSymbols])
		if err != nil {
			return nil, err
		}
		coded = append(coded, blk...)
	}
	depth := cd.Interleave
	if depth <= 1 || nblocks%depth != 0 {
		return coded, nil
	}
	iv, err := fec.NewInterleaver(depth)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(coded))
	group := depth * fec.BlockSymbols
	for off := 0; off < len(coded); off += group {
		w, err := iv.Interleave(coded[off : off+group])
		if err != nil {
			return nil, err
		}
		out = append(out, w...)
	}
	return out, nil
}

// DecodeResult tallies a frame decode.
type DecodeResult struct {
	Payload    []byte
	Corrected  int  // blocks repaired
	Detected   int  // blocks flagged uncorrectable
	Undetected bool // set by tests comparing against ground truth
}

// Decode deinterleaves and decodes a wire frame; blocks flagged
// uncorrectable leave Detected > 0 and the caller must retransmit.
func (cd Codec) Decode(wire []byte) (DecodeResult, error) {
	var res DecodeResult
	if len(wire)%fec.BlockSymbols != 0 {
		return res, fmt.Errorf("link: wire frame %d bytes not a multiple of %d", len(wire), fec.BlockSymbols)
	}
	coded := wire
	depth := cd.Interleave
	if depth > 1 && (len(wire)/fec.BlockSymbols)%depth == 0 {
		iv, err := fec.NewInterleaver(depth)
		if err != nil {
			return res, err
		}
		out := make([]byte, 0, len(wire))
		group := depth * fec.BlockSymbols
		for off := 0; off < len(wire); off += group {
			d, err := iv.Deinterleave(wire[off : off+group])
			if err != nil {
				return res, err
			}
			out = append(out, d...)
		}
		coded = out
	}
	for off := 0; off < len(coded); off += fec.BlockSymbols {
		blk := make([]byte, fec.BlockSymbols)
		copy(blk, coded[off:off+fec.BlockSymbols])
		data, status, err := fec.Decode(blk)
		if err != nil {
			return res, err
		}
		switch status {
		case fec.OK:
		case fec.Corrected:
			res.Corrected++
		case fec.Detected:
			res.Detected++
			data = blk[:fec.DataSymbols] // deliver as-is; flagged bad
		}
		res.Payload = append(res.Payload, data...)
	}
	return res, nil
}

func logFloat(x float64) float64   { return math.Log(x) }
func log1mFloat(p float64) float64 { return math.Log1p(-p) }
