package link

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Frame is one link-layer transmission unit: a sequence-numbered
// payload protected by the FEC codec.
type Frame struct {
	Seq     uint64
	Payload []byte
}

// ReliableLink implements the hop-by-hop hardware retransmission of
// §IV.C over an unreliable Channel pair: go-back-N with cumulative ACKs
// riding the reverse channel. The receiver delivers frames strictly in
// order; frames whose FEC decode flags uncorrectable errors are treated
// as lost and repaired by retransmission from the sender window.
//
// The combination reproduces the paper's reliability budget: the FEC
// corrects isolated errors, detected-uncorrectable blocks are repaired
// by retransmission, and only FEC miscorrections (≈1e-21) leak through.
type ReliableLink struct {
	kernel  *sim.Kernel
	forward *Channel
	reverse *Channel
	codec   Codec

	// Window is the go-back-N sender window in frames.
	Window int
	// Timeout triggers retransmission when ACKs stall; size it above
	// one round trip plus frame time.
	Timeout units.Time

	// Deliver is invoked for each in-order, verified frame payload.
	Deliver func(f Frame)

	// Sender state: pending holds frames [base, next); high is the next
	// sequence to (re)transmit, rewound to base on timeout.
	next, base, high uint64
	maxSent          uint64
	pending          []Frame
	timer            sim.Handle
	timerSet         bool

	// Receiver state.
	expect uint64

	// Stats.
	Sent, Retransmitted, Delivered, CorruptDropped uint64
	AcksSent                                       uint64

	// failure records the first unrecoverable link fault (the codec
	// rejecting a frame); once set the link stops transmitting and
	// Send/Err report it.
	failure error
}

// NewReliableLink wires a reliable link over forward/reverse channels.
func NewReliableLink(k *sim.Kernel, fwd, rev *Channel, codec Codec, window int, timeout units.Time) *ReliableLink {
	if window < 1 {
		window = 8
	}
	return &ReliableLink{
		kernel:  k,
		forward: fwd,
		reverse: rev,
		codec:   codec,
		Window:  window,
		Timeout: timeout,
	}
}

// Send queues a payload (a positive multiple of 32 bytes, the FEC data
// block size) for reliable in-order delivery.
func (l *ReliableLink) Send(payload []byte) error {
	if l.failure != nil {
		return l.failure
	}
	if len(payload) == 0 || len(payload)%32 != 0 {
		return fmt.Errorf("link: payload must be a positive multiple of 32 bytes, got %d", len(payload))
	}
	f := Frame{Seq: l.next, Payload: append([]byte(nil), payload...)}
	l.next++
	l.pending = append(l.pending, f)
	l.pump()
	return nil
}

// InFlight reports unacknowledged frames.
func (l *ReliableLink) InFlight() int { return int(l.next - l.base) }

// Done reports whether every queued frame has been acknowledged.
func (l *ReliableLink) Done() bool { return l.base == l.next }

// Err reports the first unrecoverable link fault, or nil. A faulted
// link keeps accepting simulated receive events but stops transmitting.
func (l *ReliableLink) Err() error { return l.failure }

// fail latches the first unrecoverable fault.
func (l *ReliableLink) fail(err error) {
	if l.failure == nil {
		l.failure = err
	}
}

// pump transmits frames up to the window edge.
func (l *ReliableLink) pump() {
	for l.failure == nil && l.high < l.next && l.high < l.base+uint64(l.Window) {
		l.transmit(l.pending[l.high-l.base])
		l.high++
	}
	l.armTimer()
}

// transmit encodes and launches one frame on the forward channel.
func (l *ReliableLink) transmit(f Frame) {
	if f.Seq < l.maxSent {
		l.Retransmitted++
	} else {
		l.maxSent = f.Seq + 1
		l.Sent++
	}
	header := make([]byte, 32) // one FEC block carries seq + reserved
	putUint64(header, f.Seq)
	wire, err := l.codec.Encode(append(header, f.Payload...))
	if err != nil {
		l.fail(fmt.Errorf("link: encode: %w", err))
		return
	}
	corrupted := l.forward.Corrupt(wire)
	arrive := l.forward.Transit(l.kernel.Now(), len(wire))
	l.kernel.At(arrive, func(units.Time) { l.receive(corrupted) })
}

// receive runs at the far end: FEC-decode, verify, deliver in order,
// and ACK cumulatively.
func (l *ReliableLink) receive(wire []byte) {
	res, err := l.codec.Decode(wire)
	if err != nil || res.Detected > 0 {
		// Treat as lost; the sender timeout will go-back-N.
		l.CorruptDropped++
		return
	}
	seq := getUint64(res.Payload[:8])
	if seq != l.expect {
		// Duplicate or gap (go-back overlap); restate the cumulative ACK.
		l.sendAck(l.expect)
		return
	}
	l.expect++
	l.Delivered++
	if l.Deliver != nil {
		l.Deliver(Frame{Seq: seq, Payload: res.Payload[32:]})
	}
	l.sendAck(l.expect)
}

// sendAck carries a cumulative ACK on the reverse channel. ACKs are
// FEC-protected like data; a corrupted ACK is dropped and a later one
// supersedes it.
func (l *ReliableLink) sendAck(cum uint64) {
	payload := make([]byte, 32)
	putUint64(payload, cum)
	wire, err := l.codec.Encode(payload)
	if err != nil {
		l.fail(fmt.Errorf("link: ack encode: %w", err))
		return
	}
	l.AcksSent++
	corrupted := l.reverse.Corrupt(wire)
	arrive := l.reverse.Transit(l.kernel.Now(), len(wire))
	l.kernel.At(arrive, func(units.Time) { l.receiveAck(corrupted) })
}

// receiveAck advances the sender window.
func (l *ReliableLink) receiveAck(wire []byte) {
	res, err := l.codec.Decode(wire)
	if err != nil || res.Detected > 0 {
		return
	}
	cum := getUint64(res.Payload[:8])
	if cum <= l.base {
		return
	}
	advance := cum - l.base
	if advance > uint64(len(l.pending)) {
		advance = uint64(len(l.pending))
	}
	l.pending = l.pending[advance:]
	l.base += advance
	if l.high < l.base {
		l.high = l.base
	}
	if l.timerSet {
		l.kernel.Cancel(l.timer)
		l.timerSet = false
	}
	l.pump()
}

// armTimer (re)arms the go-back-N timeout while frames are in flight.
func (l *ReliableLink) armTimer() {
	if l.timerSet || l.base == l.next {
		return
	}
	l.timerSet = true
	l.timer = l.kernel.After(l.Timeout, func(units.Time) {
		l.timerSet = false
		l.high = l.base // go-back-N: resend the whole window
		l.pump()
	})
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
