package link

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/fec"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestChannelTransit(t *testing.T) {
	c := NewChannel(100*units.Nanosecond, units.OSMOSISPortRate, 0, 1)
	got := c.Transit(0, 256)
	want := 100*units.Nanosecond + 51200*units.Picosecond
	if got != want {
		t.Errorf("transit %v want %v", got, want)
	}
}

func TestCorruptCleanChannel(t *testing.T) {
	c := NewChannel(0, units.OSMOSISPortRate, 0, 1)
	data := []byte{1, 2, 3, 4}
	out := c.Corrupt(data)
	if !bytes.Equal(out, data) {
		t.Error("error-free channel corrupted data")
	}
	if &out[0] == &data[0] {
		t.Error("Corrupt must copy")
	}
}

func TestCorruptMeasuredBER(t *testing.T) {
	const ber = 1e-3
	c := NewChannel(0, units.OSMOSISPortRate, ber, 42)
	buf := make([]byte, 4096)
	for i := 0; i < 300; i++ {
		c.Corrupt(buf)
	}
	got := c.MeasuredBER()
	if math.Abs(got-ber)/ber > 0.1 {
		t.Errorf("measured BER %v, want ~%v (%d flips / %d bits)", got, ber, c.Flips(), c.BitsSent())
	}
}

func TestCorruptHighBER(t *testing.T) {
	// The geometric-gap sampler must behave at large p too.
	c := NewChannel(0, units.OSMOSISPortRate, 0.25, 7)
	buf := make([]byte, 8192)
	c.Corrupt(buf)
	got := c.MeasuredBER()
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("measured BER %v at p=0.25", got)
	}
}

func TestCodecRoundTripClean(t *testing.T) {
	cd := Codec{}
	payload := make([]byte, 4*fec.DataSymbols)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	wire, err := cd.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 4*fec.BlockSymbols {
		t.Fatalf("wire length %d", len(wire))
	}
	res, err := cd.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 || res.Corrected != 0 {
		t.Errorf("clean wire: detected=%d corrected=%d", res.Detected, res.Corrected)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Error("payload corrupted")
	}
}

func TestCodecRejectsBadSizes(t *testing.T) {
	cd := Codec{}
	if _, err := cd.Encode(make([]byte, 33)); err == nil {
		t.Error("unaligned payload accepted")
	}
	if _, err := cd.Decode(make([]byte, 35)); err == nil {
		t.Error("unaligned wire accepted")
	}
}

func TestCodecCorrectsScatteredErrors(t *testing.T) {
	cd := Codec{Interleave: 4}
	rng := sim.NewRNG(3)
	payload := make([]byte, 8*fec.DataSymbols)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	wire, err := cd.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// One bit flip per FEC block: with depth-4 interleaving, wire byte
	// g*4*34 + col*4 + row carries symbol col of block g*4+row.
	for b := 0; b < 8; b++ {
		g, row := b/4, b%4
		col := int(rng.Uint64() % uint64(fec.BlockSymbols))
		pos := g*4*fec.BlockSymbols + col*4 + row
		wire[pos] ^= 1 << (rng.Uint64() % 8)
	}
	res, err := cd.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Errorf("detected %d blocks despite single-bit-per-block errors", res.Detected)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Error("payload wrong after correction")
	}
}

func TestCodecInterleaveSavesBursts(t *testing.T) {
	rng := sim.NewRNG(9)
	payload := make([]byte, 4*fec.DataSymbols)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	burst := func(cd Codec) int {
		wire, err := cd.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		// A 4-symbol wire burst (single bit flip in each of 4 adjacent bytes).
		for off := 0; off < 4; off++ {
			wire[100+off] ^= 0x10
		}
		res, err := cd.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		return res.Detected
	}
	if d := burst(Codec{Interleave: 4}); d != 0 {
		t.Errorf("interleaved codec lost %d blocks to a burst", d)
	}
	if d := burst(Codec{}); d == 0 {
		t.Error("un-interleaved codec should lose a block to a 4-symbol burst (guards the comparison)")
	}
}

func TestReliableLinkDeliversInOrderUnderErrors(t *testing.T) {
	k := sim.New()
	// BER high enough that many frames need retransmission.
	fwd := NewChannel(50*units.Nanosecond, units.OSMOSISPortRate, 5e-4, 1)
	rev := NewChannel(50*units.Nanosecond, units.OSMOSISPortRate, 5e-4, 2)
	l := NewReliableLink(k, fwd, rev, Codec{}, 8, 2*units.Microsecond)
	var got [][]byte
	l.Deliver = func(f Frame) {
		cp := append([]byte(nil), f.Payload...)
		got = append(got, cp)
	}
	var want [][]byte
	rng := sim.NewRNG(5)
	const frames = 300
	for i := 0; i < frames; i++ {
		p := make([]byte, 2*fec.DataSymbols)
		for j := range p {
			p[j] = byte(rng.Uint64())
		}
		want = append(want, p)
		if err := l.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(units.Second) // plenty of virtual time
	if !l.Done() {
		t.Fatalf("link not drained: in flight %d", l.InFlight())
	}
	if len(got) != frames {
		t.Fatalf("delivered %d frames, want %d", len(got), frames)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d corrupted or out of order", i)
		}
	}
	if l.CorruptDropped == 0 && l.Retransmitted == 0 {
		t.Error("test BER too low to exercise retransmission")
	}
	t.Logf("sent=%d retransmitted=%d corruptDropped=%d acks=%d",
		l.Sent, l.Retransmitted, l.CorruptDropped, l.AcksSent)
}

func TestReliableLinkCleanChannelNoRetransmits(t *testing.T) {
	k := sim.New()
	fwd := NewChannel(10*units.Nanosecond, units.OSMOSISPortRate, 0, 1)
	rev := NewChannel(10*units.Nanosecond, units.OSMOSISPortRate, 0, 2)
	l := NewReliableLink(k, fwd, rev, Codec{}, 4, units.Microsecond)
	delivered := 0
	l.Deliver = func(Frame) { delivered++ }
	for i := 0; i < 50; i++ {
		if err := l.Send(make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(units.Second)
	if delivered != 50 || l.Retransmitted != 0 {
		t.Errorf("delivered=%d retransmitted=%d", delivered, l.Retransmitted)
	}
}

func TestReliableLinkRejectsBadPayload(t *testing.T) {
	k := sim.New()
	l := NewReliableLink(k, NewChannel(0, units.OSMOSISPortRate, 0, 1),
		NewChannel(0, units.OSMOSISPortRate, 0, 2), Codec{}, 4, units.Microsecond)
	if err := l.Send(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := l.Send(make([]byte, 33)); err == nil {
		t.Error("unaligned payload accepted")
	}
}

func TestUintCodec(t *testing.T) {
	b := make([]byte, 8)
	for _, v := range []uint64{0, 1, 1<<40 + 7, ^uint64(0)} {
		putUint64(b, v)
		if got := getUint64(b); got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

// TestLinkFaultLatches: a codec rejection during transmit latches a
// sticky fault instead of panicking; the link stops transmitting and
// Send/Err report the fault.
func TestLinkFaultLatches(t *testing.T) {
	k := sim.New()
	fwd := NewChannel(0, units.OSMOSISPortRate, 0, 1)
	rev := NewChannel(0, units.OSMOSISPortRate, 0, 2)
	l := NewReliableLink(k, fwd, rev, Codec{}, 4, units.Microsecond)
	// Inject a frame whose payload the codec must reject (not a
	// multiple of the FEC block size), bypassing Send's validation.
	l.pending = append(l.pending, Frame{Seq: l.next, Payload: make([]byte, 7)})
	l.next++
	l.pump()
	if l.Err() == nil {
		t.Fatal("expected a latched fault after codec rejection")
	}
	if err := l.Send(make([]byte, 32)); err == nil {
		t.Error("Send on a faulted link should return the fault")
	}
	if l.InFlight() == 0 {
		t.Error("the faulted frame should remain unacknowledged")
	}
}
