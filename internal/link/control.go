package link

import (
	"fmt"

	"repro/internal/sim"
)

// Reliable control channel (ref [19], "Reliable control protocol for
// crossbar arbitration"): request/grant traffic between the ingress
// adapters and the central scheduler is latency critical, so loss
// cannot be repaired by ordinary retransmission. The protocol instead
// makes the exchange self-healing:
//
//   - Requests are *absolute state* (per-VOQ occupancy counters), not
//     increments. A corrupted request message is simply discarded; the
//     next cycle's snapshot heals the scheduler's view.
//   - Grants carry a sequence number, and the next request message
//     echoes the highest grant sequence received. A missing echo tells
//     the scheduler the grant was lost so it can release the reserved
//     crossbar resources instead of leaking them.
//
// ControlChannel simulates one adapter-scheduler pair of this protocol
// under message corruption and verifies that both views re-converge.

// RequestMsg is an adapter's per-cycle state snapshot.
type RequestMsg struct {
	// VOQCounts is the absolute occupancy per output.
	VOQCounts []int
	// GrantEcho is the highest grant sequence received so far.
	GrantEcho uint64
}

// GrantMsg is a scheduler-to-adapter grant.
type GrantMsg struct {
	Seq    uint64
	Output int
}

// ControlChannel models the protocol between one adapter and the
// scheduler with i.i.d. message corruption on both directions.
type ControlChannel struct {
	n       int
	lossPct float64
	rng     *sim.RNG

	// Adapter-side truth.
	adapterCounts []int
	grantEcho     uint64

	// Scheduler-side view.
	schedView   []int
	nextGrant   uint64
	outstanding map[uint64]GrantMsg

	// Stats.
	RequestsSent, RequestsLost uint64
	GrantsSent, GrantsLost     uint64
	GrantsRecovered            uint64
	StaleCycles                uint64
}

// NewControlChannel builds a channel for an n-output adapter with the
// given per-message corruption probability.
func NewControlChannel(n int, lossProb float64, seed uint64) *ControlChannel {
	return &ControlChannel{
		n:             n,
		lossPct:       lossProb,
		rng:           sim.NewRNG(seed),
		adapterCounts: make([]int, n),
		schedView:     make([]int, n),
		outstanding:   make(map[uint64]GrantMsg),
	}
}

// Enqueue records cells arriving into the adapter's VOQs.
func (cc *ControlChannel) Enqueue(out, cells int) error {
	if out < 0 || out >= cc.n {
		return fmt.Errorf("link: output %d out of range", out)
	}
	cc.adapterCounts[out] += cells
	return nil
}

// AdapterCount reports ground truth for an output.
func (cc *ControlChannel) AdapterCount(out int) int { return cc.adapterCounts[out] }

// SchedulerView reports the scheduler's belief for an output.
func (cc *ControlChannel) SchedulerView(out int) int { return cc.schedView[out] }

// Converged reports whether the scheduler's view matches adapter truth.
func (cc *ControlChannel) Converged() bool {
	for i := range cc.schedView {
		if cc.schedView[i] != cc.adapterCounts[i] {
			return false
		}
	}
	return true
}

// CycleRequest sends the per-cycle request snapshot (possibly lost).
func (cc *ControlChannel) CycleRequest() {
	cc.RequestsSent++
	if cc.rng.Bernoulli(cc.lossPct) {
		cc.RequestsLost++
		cc.StaleCycles++
		return
	}
	msg := RequestMsg{VOQCounts: append([]int(nil), cc.adapterCounts...), GrantEcho: cc.grantEcho}
	copy(cc.schedView, msg.VOQCounts)
	// The echo confirms grants; anything outstanding at or below the
	// echo is known delivered, anything the adapter has not echoed after
	// this snapshot was lost and its resources are released.
	for seq, g := range cc.outstanding {
		if seq <= msg.GrantEcho {
			delete(cc.outstanding, seq)
		} else {
			// Lost grant detected by the fresh snapshot still showing
			// the cell queued; recover by releasing the reservation.
			cc.GrantsRecovered++
			delete(cc.outstanding, seq)
			_ = g
		}
	}
}

// IssueGrant sends a grant for an output (possibly lost) and returns
// whether the adapter received it.
func (cc *ControlChannel) IssueGrant(out int) (received bool) {
	cc.nextGrant++
	g := GrantMsg{Seq: cc.nextGrant, Output: out}
	cc.GrantsSent++
	if cc.schedView[out] > 0 {
		cc.schedView[out]--
	}
	if cc.rng.Bernoulli(cc.lossPct) {
		cc.GrantsLost++
		cc.outstanding[g.Seq] = g
		return false
	}
	// Adapter receives: dequeues a cell and records the echo.
	if cc.adapterCounts[out] > 0 {
		cc.adapterCounts[out]--
	}
	if g.Seq > cc.grantEcho {
		cc.grantEcho = g.Seq
	}
	return true
}
