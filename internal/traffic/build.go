// Config and Build: the named-workload surface the experiment
// harnesses, cmds, and trace recorder build per-port generator sets
// through.

package traffic

import (
	"fmt"

	"repro/internal/sim"
)

// Config names a workload so experiment harnesses can build per-port
// generator sets uniformly.
type Config struct {
	Kind         Kind
	N            int     // port count
	Load         float64 // offered load per port, cells/slot
	ControlShare float64 // fraction of control cells (Bernoulli kinds)
	MeanBurst    float64 // OnOff/MMPP/Pareto mean burst (dwell) length in slots
	HotFraction  float64 // Hotspot fraction, required in (0, 1] for KindHotspot
	HotPort      int     // Hotspot target, in [0, N)
	Shift        int     // Shift permutation distance
	Fanin        int     // Incast storm senders per epoch (0 = N/4, clamped to [1, N-1])
	EpochSlots   uint64  // Incast epoch length in slots (0 = 512)
	PhaseSlots   uint64  // collective phase/chunk length in slots (0 = 64)
	ParetoAlpha  float64 // Pareto shape for KindParetoOnOff (0 = 1.5; must be > 1)
	Trace        *Trace  // recorded workload for KindTrace
	Seed         uint64
}

// Kind enumerates the built-in workload families.
type Kind uint8

// Workload families.
const (
	KindUniform Kind = iota
	KindBursty
	KindHotspot
	KindPermutation
	KindDiagonal
	KindBimodal
	KindIncast
	KindMMPP
	KindParetoOnOff
	KindAllToAll
	KindRingAllReduce
	KindTreeAllReduce
	KindTrace
)

// kindNames maps every Kind to its canonical flag/report name, in Kind
// order.
var kindNames = [...]string{
	"uniform", "bursty", "hotspot", "permutation", "diagonal", "bimodal",
	"incast", "mmpp", "pareto", "alltoall", "ring-allreduce", "tree-allreduce",
	"trace",
}

// String names the workload kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindNames lists the canonical names of all built-in workload kinds,
// in Kind order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames[:])
	return out
}

// ParseKind resolves a canonical workload name (as printed by
// Kind.String) back to its Kind.
func ParseKind(name string) (Kind, error) {
	for i, kn := range kindNames {
		if kn == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown workload kind %q (known: %v)", name, kindNames)
}

// Build constructs one generator per port for the named workload.
func Build(cfg Config) ([]Generator, error) {
	if cfg.Kind == KindTrace {
		if cfg.Trace == nil {
			return nil, fmt.Errorf("traffic: KindTrace needs Config.Trace")
		}
		if cfg.N != 0 && cfg.N != cfg.Trace.N {
			return nil, fmt.Errorf("traffic: trace has %d ports, config wants %d", cfg.Trace.N, cfg.N)
		}
		return cfg.Trace.Generators(), nil
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("traffic: invalid port count %d", cfg.N)
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", cfg.Load)
	}
	mb := cfg.MeanBurst
	if mb == 0 {
		mb = 16
	}
	phase := cfg.PhaseSlots
	if phase == 0 {
		phase = 64
	}
	switch cfg.Kind {
	case KindHotspot:
		// Validated, not defaulted: the old silent 0 -> 0.5 fraction
		// default hid misconfigured hotspots (and a fraction of exactly
		// 0 is just uniform traffic wearing a hotspot label).
		if cfg.HotFraction <= 0 || cfg.HotFraction > 1 {
			return nil, fmt.Errorf("traffic: hotspot fraction %v out of (0,1] (set HotFraction explicitly; there is no default)", cfg.HotFraction)
		}
		if cfg.HotPort < 0 || cfg.HotPort >= cfg.N {
			return nil, fmt.Errorf("traffic: hot port %d out of [0,%d)", cfg.HotPort, cfg.N)
		}
	case KindParetoOnOff:
		if cfg.ParetoAlpha != 0 && cfg.ParetoAlpha <= 1 {
			return nil, fmt.Errorf("traffic: pareto shape %v must be > 1 for a finite mean burst", cfg.ParetoAlpha)
		}
	case KindAllToAll, KindRingAllReduce, KindTreeAllReduce:
		if cfg.N < 2 {
			return nil, fmt.Errorf("traffic: %v needs at least 2 ports", cfg.Kind)
		}
	case KindIncast:
		if cfg.Fanin < 0 || cfg.Fanin >= cfg.N {
			return nil, fmt.Errorf("traffic: incast fan-in %d out of [1,%d)", cfg.Fanin, cfg.N)
		}
	}
	fanin := cfg.Fanin
	if fanin == 0 {
		fanin = cfg.N / 4
		if fanin < 1 {
			fanin = 1
		}
	}
	epoch := cfg.EpochSlots
	if epoch == 0 {
		epoch = 512
	}
	alpha := cfg.ParetoAlpha
	if alpha == 0 {
		alpha = 1.5
	}
	root := sim.NewRNG(cfg.Seed)
	gens := make([]Generator, cfg.N)
	var perm Permutation
	if cfg.Kind == KindPermutation {
		if cfg.Shift != 0 {
			perm = NewShiftPermutation(cfg.N, cfg.Shift)
		} else {
			perm = NewRandomPermutation(cfg.N, root.Fork(9999))
		}
	}
	// The discretized Pareto burst mean is an O(paretoBurstCap) sum;
	// compute it once and share it across ports (the Build-time state
	// of a fresh ParetoOnOff is all zero, so a copy is a clean clone).
	var paretoProto *ParetoOnOff
	for i := 0; i < cfg.N; i++ {
		rng := root.Fork(uint64(i) + 1)
		switch cfg.Kind {
		case KindUniform:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.ControlShare = cfg.ControlShare
			gens[i] = b
		case KindBursty:
			gens[i] = NewOnOff(i, cfg.N, cfg.Load, mb, rng)
		case KindHotspot:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.Pattern = Hotspot{N: cfg.N, Hot: cfg.HotPort, Fraction: cfg.HotFraction}
			gens[i] = b
		case KindPermutation:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.Pattern = perm
			gens[i] = b
		case KindDiagonal:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.Pattern = Diagonal{cfg.N}
			gens[i] = b
		case KindBimodal:
			cs := cfg.ControlShare
			if cs == 0 {
				cs = 0.05
			}
			gens[i] = NewBimodal(i, cfg.N, cfg.Load*(1-cs), cfg.Load*cs, rng)
		case KindIncast:
			gens[i] = NewIncast(i, cfg.N, fanin, epoch, cfg.Load, rng)
		case KindMMPP:
			gens[i] = NewMMPP(i, cfg.N, cfg.Load, mb, rng)
		case KindParetoOnOff:
			if paretoProto == nil {
				paretoProto = NewParetoOnOff(i, cfg.N, cfg.Load, mb, alpha, rng)
				gens[i] = paretoProto
			} else {
				g := *paretoProto
				g.Src = i
				g.RNG = rng
				gens[i] = &g
			}
		case KindAllToAll:
			gens[i] = NewAllToAll(i, cfg.N, phase, cfg.Load, rng)
		case KindRingAllReduce:
			gens[i] = NewRingAllReduce(i, cfg.N, phase, cfg.Load)
		case KindTreeAllReduce:
			gens[i] = NewTreeAllReduce(i, cfg.N, phase, cfg.Load, rng)
		default:
			return nil, fmt.Errorf("traffic: unknown kind %v", cfg.Kind)
		}
	}
	return gens, nil
}
