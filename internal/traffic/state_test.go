package traffic

// Checkpoint round-trip suite for every workload kind: a generator set
// checkpointed mid-stream and restored into a freshly Built twin must
// produce identical arrivals for every subsequent slot.

import (
	"strings"
	"testing"

	"repro/internal/ckpt"
)

func stateKindConfigs(t *testing.T) map[string]Config {
	t.Helper()
	const n = 8
	cfgs := map[string]Config{
		"uniform":        {Kind: KindUniform, N: n, Load: 0.7, ControlShare: 0.1, Seed: 11},
		"bursty":         {Kind: KindBursty, N: n, Load: 0.6, MeanBurst: 8, Seed: 12},
		"hotspot":        {Kind: KindHotspot, N: n, Load: 0.5, HotFraction: 0.4, HotPort: 3, Seed: 13},
		"permutation":    {Kind: KindPermutation, N: n, Load: 0.9, Seed: 14},
		"diagonal":       {Kind: KindDiagonal, N: n, Load: 0.8, Seed: 15},
		"bimodal":        {Kind: KindBimodal, N: n, Load: 0.6, ControlShare: 0.1, Seed: 16},
		"incast":         {Kind: KindIncast, N: n, Load: 0.7, Fanin: 3, EpochSlots: 32, Seed: 17},
		"mmpp":           {Kind: KindMMPP, N: n, Load: 0.5, MeanBurst: 16, Seed: 18},
		"pareto":         {Kind: KindParetoOnOff, N: n, Load: 0.5, MeanBurst: 8, ParetoAlpha: 1.6, Seed: 19},
		"alltoall":       {Kind: KindAllToAll, N: n, Load: 0.6, PhaseSlots: 16, Seed: 20},
		"ring-allreduce": {Kind: KindRingAllReduce, N: n, Load: 0.7, PhaseSlots: 16, Seed: 21},
		"tree-allreduce": {Kind: KindTreeAllReduce, N: n, Load: 0.6, PhaseSlots: 16, Seed: 22},
	}
	// A trace workload replays through TracePlayer's cursor.
	tr, err := RecordTrace(Config{Kind: KindBursty, N: n, Load: 0.6, Seed: 23}, 400)
	if err != nil {
		t.Fatalf("record trace: %v", err)
	}
	cfgs["trace"] = Config{Kind: KindTrace, Trace: tr}
	return cfgs
}

func TestGeneratorCheckpointRoundTripAllKinds(t *testing.T) {
	for name, cfg := range stateKindConfigs(t) {
		t.Run(name, func(t *testing.T) {
			orig, err := Build(cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			// Advance into the middle of the stream (bursts in flight,
			// pending FIFOs possibly populated).
			for s := uint64(0); s < 150; s++ {
				for _, g := range orig {
					g.Next(s)
				}
			}
			// Checkpoint every port.
			var buf strings.Builder
			e := ckpt.NewEncoder(&buf)
			for _, g := range orig {
				g.(StateCodec).SaveState(e)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("save: %v", err)
			}
			// Restore into a freshly built twin.
			twin, err := Build(cfg)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			d, err := ckpt.NewDecoder(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("decoder: %v", err)
			}
			for _, g := range twin {
				if err := g.(StateCodec).LoadState(d); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			// Identical arrivals from here on.
			for s := uint64(150); s < 500; s++ {
				for p := range orig {
					a1, ok1 := orig[p].Next(s)
					a2, ok2 := twin[p].Next(s)
					if ok1 != ok2 || a1 != a2 {
						t.Fatalf("slot %d port %d: diverged: (%v,%v) vs (%v,%v)", s, p, a1, ok1, a2, ok2)
					}
				}
			}
		})
	}
}

// TestGeneratorCheckpointKindMismatch: restoring a checkpoint of one
// generator kind into another fails on the section name instead of
// silently misdrawing.
func TestGeneratorCheckpointKindMismatch(t *testing.T) {
	gens, err := Build(Config{Kind: KindBursty, N: 4, Load: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	e := ckpt.NewEncoder(&buf)
	gens[0].(StateCodec).SaveState(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	other, err := Build(Config{Kind: KindUniform, N: 4, Load: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ckpt.NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := other[0].(StateCodec).LoadState(d); err == nil {
		t.Fatal("bursty checkpoint restored into a Bernoulli generator")
	}
}
