// Deterministic workload traces: any generated workload can be recorded
// to a versioned, diffable text file and replayed bit-exactly — the
// same arrivals at the same slots with the same destinations and
// classes — independent of the generator kind, RNG, or code version
// that produced it.
//
// Format (version 1), line-oriented ASCII:
//
//	osmosis-trace v1 n=<ports> slots=<slots> events=<count>
//	<slot> <port> <dst> <class>
//	...
//
// Events are sorted by (slot, port) with at most one event per (slot,
// port) pair — the slotted-generator contract — so a trace written from
// the same events is byte-identical however it was produced, and two
// traces are equal iff their files are.

package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceVersion is the trace format version this package reads and
// writes.
const TraceVersion = 1

// traceMagic opens every trace file.
const traceMagic = "osmosis-trace"

// TraceEvent is one recorded cell arrival.
type TraceEvent struct {
	Slot  uint64
	Port  int
	Dst   int
	Class ClassChoice
}

// Trace is a recorded workload: every arrival of N ports over Slots
// slots, sorted by (Slot, Port).
type Trace struct {
	N      int
	Slots  uint64
	Events []TraceEvent
}

// RecordTrace builds the workload named by cfg and records slots slots
// of it. The trace replays bit-exactly through Generators or a
// KindTrace Build.
func RecordTrace(cfg Config, slots uint64) (*Trace, error) {
	gens, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	t := &Trace{N: len(gens), Slots: slots}
	for s := uint64(0); s < slots; s++ {
		for p, g := range gens {
			if a, ok := g.Next(s); ok {
				t.Events = append(t.Events, TraceEvent{Slot: s, Port: p, Dst: a.Dst, Class: a.Class})
			}
		}
	}
	return t, nil
}

// Write serializes the trace in the version-1 text format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s v%d n=%d slots=%d events=%d\n",
		traceMagic, TraceVersion, t.N, t.Slots, len(t.Events)); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.Slot, e.Port, e.Dst, e.Class); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a version-1 trace, validating the header, event
// count, field ranges, and (slot, port) ordering.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("traffic: trace header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 5 || fields[0] != traceMagic {
		return nil, fmt.Errorf("traffic: not a trace file (header %q)", strings.TrimSpace(header))
	}
	if fields[1] != fmt.Sprintf("v%d", TraceVersion) {
		return nil, fmt.Errorf("traffic: unsupported trace version %q (this build reads v%d)", fields[1], TraceVersion)
	}
	t := &Trace{}
	var events uint64
	for i, spec := range []struct {
		key string
		dst *uint64
	}{{"n", nil}, {"slots", &t.Slots}, {"events", &events}} {
		kv := strings.SplitN(fields[i+2], "=", 2)
		if len(kv) != 2 || kv[0] != spec.key {
			return nil, fmt.Errorf("traffic: trace header field %q, want %s=<value>", fields[i+2], spec.key)
		}
		v, err := strconv.ParseUint(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: trace header %s: %w", spec.key, err)
		}
		if spec.dst != nil {
			*spec.dst = v
		} else {
			t.N = int(v)
		}
	}
	if t.N <= 0 {
		return nil, fmt.Errorf("traffic: trace with %d ports", t.N)
	}
	t.Events = make([]TraceEvent, 0, events)
	prevSlot, prevPort := uint64(0), -1
	for line := 1; ; line++ {
		raw, err := br.ReadString('\n')
		if raw == "" && err == io.EOF {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line, err)
		}
		parts := strings.Fields(raw)
		if len(parts) != 4 {
			return nil, fmt.Errorf("traffic: trace line %d has %d fields, want 4", line, len(parts))
		}
		var e TraceEvent
		var cls uint64
		for i, f := range parts {
			v, perr := strconv.ParseUint(f, 10, 64)
			if perr != nil {
				return nil, fmt.Errorf("traffic: trace line %d field %d: %w", line, i+1, perr)
			}
			switch i {
			case 0:
				e.Slot = v
			case 1:
				e.Port = int(v)
			case 2:
				e.Dst = int(v)
			default:
				cls = v
			}
		}
		if cls > uint64(ClassControl) {
			return nil, fmt.Errorf("traffic: trace line %d class %d out of range", line, cls)
		}
		e.Class = ClassChoice(cls)
		if e.Slot >= t.Slots {
			return nil, fmt.Errorf("traffic: trace line %d slot %d beyond declared %d slots", line, e.Slot, t.Slots)
		}
		if e.Port >= t.N || e.Dst < 0 || e.Dst >= t.N {
			return nil, fmt.Errorf("traffic: trace line %d port %d -> dst %d out of [0,%d)", line, e.Port, e.Dst, t.N)
		}
		if e.Slot < prevSlot || (e.Slot == prevSlot && e.Port <= prevPort) {
			return nil, fmt.Errorf("traffic: trace line %d out of (slot, port) order", line)
		}
		prevSlot, prevPort = e.Slot, e.Port
		t.Events = append(t.Events, e)
		if err == io.EOF {
			break
		}
	}
	if uint64(len(t.Events)) != events {
		return nil, fmt.Errorf("traffic: trace declares %d events, file holds %d", events, len(t.Events))
	}
	return t, nil
}

// TracePlayer replays one port's slice of a recorded trace. Slots past
// the end of the recording are silent.
type TracePlayer struct {
	events []TraceEvent // this port's events, ascending Slot
	pos    int
}

// Next implements Generator. Calls may skip slots (the player fast-
// forwards) but must not go backwards.
func (p *TracePlayer) Next(slot uint64) (Arrival, bool) {
	for p.pos < len(p.events) && p.events[p.pos].Slot < slot {
		p.pos++
	}
	if p.pos < len(p.events) && p.events[p.pos].Slot == slot {
		e := p.events[p.pos]
		p.pos++
		return Arrival{Dst: e.Dst, Class: e.Class}, true
	}
	return Arrival{}, false
}

// Generators returns one replay generator per port. The players share
// the trace's event storage; each replay pass needs a fresh call.
func (t *Trace) Generators() []Generator {
	perPort := make([][]TraceEvent, t.N)
	for _, e := range t.Events {
		perPort[e.Port] = append(perPort[e.Port], e)
	}
	gens := make([]Generator, t.N)
	for i := range gens {
		gens[i] = &TracePlayer{events: perPort[i]}
	}
	return gens
}
