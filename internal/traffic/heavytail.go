// Heavy-tail sources: the Markov-modulated and Pareto on/off processes
// the AI-workload literature uses where geometric bursts are too tame.
// Both honour the package load-accounting contract exactly: the long-run
// offered load equals the configured Load in expectation.

package traffic

import (
	"math"

	"repro/internal/sim"
)

// MMPP is a two-state Markov-modulated Bernoulli process (the slotted
// discrete-time analogue of the classic MMPP): the source alternates
// between a high-rate and a low-rate state, each dwelt in for a
// geometric time with mean MeanDwell, and emits an i.i.d. Bernoulli
// arrival at the state's rate. Destinations are drawn per arrival from
// the Pattern (unlike OnOff's burst-constant destination), so MMPP
// stresses schedulers with rate bursts rather than destination bursts.
//
// The rates are derived from the long-run load: with equal mean dwells
// the chain spends half its time in each state, so HighRate+LowRate =
// 2*Load. NewMMPP pins HighRate = min(1, 2*Load) — the burstiest split:
// below load 0.5 the low state is fully silent (pure rate on/off), above
// it the high state saturates at one cell per slot.
type MMPP struct {
	HighRate     float64 // arrival probability per slot in the high state
	LowRate      float64 // arrival probability per slot in the low state
	MeanDwell    float64 // mean dwell in each state, slots (>= 1)
	ControlShare float64
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG

	high      bool
	remaining int
}

// NewMMPP builds a two-state modulated source with the given long-run
// load and mean per-state dwell time for one port.
func NewMMPP(src, n int, load, meanDwell float64, rng *sim.RNG) *MMPP {
	if meanDwell < 1 {
		meanDwell = 1
	}
	hi := math.Min(1, 2*load)
	m := &MMPP{
		HighRate:  hi,
		LowRate:   2*load - hi,
		MeanDwell: meanDwell,
		Pattern:   Uniform{n},
		Src:       src,
		RNG:       rng,
	}
	// Start in the stationary distribution (equal dwells: 50/50) so the
	// first dwell is not biased toward either state.
	m.high = rng.Bernoulli(0.5)
	m.remaining = 1 + rng.Geometric(1/m.MeanDwell)
	return m
}

// Next implements Generator.
func (m *MMPP) Next(slot uint64) (Arrival, bool) {
	for m.remaining == 0 {
		m.high = !m.high
		m.remaining = 1 + m.RNG.Geometric(1/m.MeanDwell)
	}
	m.remaining--
	rate := m.LowRate
	if m.high {
		rate = m.HighRate
	}
	if !m.RNG.Bernoulli(rate) {
		return Arrival{}, false
	}
	a := Arrival{Dst: m.Pattern.Pick(m.Src, slot, m.RNG)}
	if m.ControlShare > 0 && m.RNG.Bernoulli(m.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}

// paretoBurstCap bounds a single ON burst: heavy tails are the point,
// but an effectively unbounded draw (the α=1.5 tail reaches ~1e11 slots
// at the RNG's resolution) would wedge a finite simulation. The cap is
// folded into the mean the OFF dwell is derived from, so the load
// accounting stays exact for the capped distribution.
const paretoBurstCap = 1 << 20

// paretoCeilMean returns E[min(ceil(Y), cap)] for Y ~ Pareto(xm, alpha),
// via E[L] = sum_{j>=0} P(L > j) with P(Y > j) = 1 for j < xm and
// (xm/j)^alpha beyond. The sum has at most cap terms and is evaluated
// once per Build, not per draw.
func paretoCeilMean(xm, alpha float64) float64 {
	mean := 0.0
	for j := 0; j < paretoBurstCap; j++ {
		fj := float64(j)
		if fj < xm {
			mean++
			continue
		}
		term := math.Pow(xm/fj, alpha)
		mean += term
		if term < 1e-12*mean {
			// The remaining tail is bounded by the integral
			// xm^alpha * j^(1-alpha) / (alpha-1); add it and stop.
			mean += math.Pow(xm, alpha) * math.Pow(fj, 1-alpha) / (alpha - 1)
			break
		}
	}
	return mean
}

// ParetoOnOff is an on/off source whose ON burst lengths are
// Pareto-distributed (shape Alpha in (1, 2]: finite mean, infinite
// variance) — the heavy-tail regime measured in datacenter traces,
// where rare enormous bursts dominate queue build-up. OFF dwells are
// geometric with the mean that makes the long-run load exact, as in
// OnOff. The destination is burst-constant, like OnOff.
type ParetoOnOff struct {
	Alpha        float64 // Pareto shape (> 1)
	Xm           float64 // Pareto scale: minimum ON length
	Load         float64
	ControlShare float64
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG

	// meanOn is E[min(ceil(Pareto(Xm, Alpha)), paretoBurstCap)],
	// precomputed so every OFF draw can use the exact load equation.
	meanOn float64

	on        bool
	remaining int
	burstDst  int
}

// NewParetoOnOff builds a heavy-tail bursty source for one port.
// meanBurst sets the Pareto scale through the continuous-Pareto mean
// relation xm = meanBurst*(alpha-1)/alpha; the realized mean burst is
// the discretized paretoCeilMean(xm, alpha), slightly above meanBurst,
// and it is that realized mean the OFF dwell is derived from — so the
// load is exact even though the burst mean is only approximately the
// requested one.
func NewParetoOnOff(src, n int, load, meanBurst, alpha float64, rng *sim.RNG) *ParetoOnOff {
	if alpha <= 1 {
		alpha = 1.5
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	xm := meanBurst * (alpha - 1) / alpha
	if xm < 1 {
		xm = 1
	}
	p := &ParetoOnOff{
		Alpha:   alpha,
		Xm:      xm,
		Load:    load,
		Pattern: Uniform{n},
		Src:     src,
		RNG:     rng,
	}
	p.meanOn = paretoCeilMean(xm, alpha)
	return p
}

// drawBurst samples one ON length: ceil of an inverse-CDF Pareto draw,
// capped at paretoBurstCap.
func (p *ParetoOnOff) drawBurst() int {
	u := p.RNG.Float64()
	for u == 0 {
		u = p.RNG.Float64()
	}
	l := math.Ceil(p.Xm * math.Pow(u, -1/p.Alpha))
	if l > paretoBurstCap {
		return paretoBurstCap
	}
	return int(l)
}

// meanIdle derives the OFF dwell mean from the realized ON mean:
// load = ON / (ON + OFF).
func (p *ParetoOnOff) meanIdle() float64 {
	if p.Load >= 1 {
		return 0
	}
	if p.Load <= 0 {
		return 1e18
	}
	return p.meanOn * (1 - p.Load) / p.Load
}

// Next implements Generator.
func (p *ParetoOnOff) Next(slot uint64) (Arrival, bool) {
	for p.remaining == 0 {
		p.on = !p.on
		if p.on {
			p.remaining = p.drawBurst()
			p.burstDst = p.Pattern.Pick(p.Src, slot, p.RNG)
		} else {
			mi := p.meanIdle()
			if mi <= 0 {
				p.on = true
				p.remaining = p.drawBurst()
				p.burstDst = p.Pattern.Pick(p.Src, slot, p.RNG)
				break
			}
			// Support {0, 1, ...} with mean mi, as in OnOff: zero-length
			// OFF draws coalesce adjacent bursts.
			p.remaining = p.RNG.Geometric(1 / (1 + mi))
		}
	}
	p.remaining--
	if !p.on {
		return Arrival{}, false
	}
	a := Arrival{Dst: p.burstDst}
	if p.ControlShare > 0 && p.RNG.Bernoulli(p.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}
