// Package traffic is the workload library for the fabric simulations:
// the synthetic sources the paper's delay-versus-throughput studies use
// (Bernoulli uniform arrivals, bursty on/off sources, hotspot and
// permutation destination patterns, the bimodal control/data mix of the
// requirements table), plus the HPC/AI stress battery layered on top —
// incast/fan-in storms, Markov-modulated and Pareto heavy-tail sources,
// and synthetic collective phase schedules (all-to-all, ring and tree
// all-reduce) of the kind an AI training cluster presents. A versioned
// trace format (see Trace) records any generated workload so it reruns
// bit-exactly from a file.
//
// Generators are slotted: each ingress port is asked once per packet
// cycle whether a cell arrived and, if so, for which destination and
// class. All randomness comes from seeded per-port sim.RNG streams, so
// workloads are reproducible and independent across ports.
//
// Load accounting contract: a generator built for offered load L
// realizes L cells/slot/port in long-run expectation (for incast and
// the collectives, L is the load while a port is active; see their
// docs). No generator emits self-traffic (Dst == Src), with one
// deliberate exception: Diagonal targets output src by definition — a
// crossbar stress pattern where output i is a distinct egress adapter,
// not the source host.
package traffic

import (
	"repro/internal/sim"
)

// Arrival describes one generated cell-arrival at an ingress port.
type Arrival struct {
	Dst   int
	Class ClassChoice
}

// ClassChoice selects the traffic mode of a generated cell.
type ClassChoice uint8

// Class choices; mirror packet.Class without importing it so the traffic
// package stays independent of the cell representation.
const (
	ClassData ClassChoice = iota
	ClassControl
)

// Generator produces arrivals for one ingress port, one slot at a time.
type Generator interface {
	// Next reports whether a cell arrives at this port in this slot and,
	// if so, its destination port and class.
	Next(slot uint64) (Arrival, bool)
}

// Pattern chooses a destination for a given source at a given slot.
type Pattern interface {
	// Pick returns a destination port in [0, N), never src itself.
	Pick(src int, slot uint64, rng *sim.RNG) int
}

// Uniform spreads destinations uniformly over all ports except the
// source itself (self-traffic never crosses the fabric).
type Uniform struct{ N int }

// Pick implements Pattern.
func (u Uniform) Pick(src int, _ uint64, rng *sim.RNG) int {
	if u.N <= 1 {
		return src
	}
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Hotspot sends a fraction of traffic to one hot output and spreads the
// remainder uniformly. It models the overload scenarios used to exercise
// flow control (§IV.B). The hot port itself never aims at Hot: its
// traffic is entirely uniform over the other ports, honouring the
// package-wide no-self-traffic contract.
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // fraction of cells aimed at Hot
}

// Pick implements Pattern.
func (h Hotspot) Pick(src int, slot uint64, rng *sim.RNG) int {
	if src != h.Hot && rng.Bernoulli(h.Fraction) {
		return h.Hot
	}
	return Uniform{h.N}.Pick(src, slot, rng)
}

// Permutation sends all traffic from port i to a fixed partner, the
// worst case for schedulers that rely on destination diversity.
type Permutation struct {
	Partner []int
}

// NewShiftPermutation builds the classic shift-by-k permutation.
func NewShiftPermutation(n, k int) Permutation {
	p := Permutation{Partner: make([]int, n)}
	for i := range p.Partner {
		p.Partner[i] = (i + k) % n
	}
	return p
}

// NewRandomPermutation builds a random permutation with no fixed points
// where possible (a derangement attempt; falls back after retries).
func NewRandomPermutation(n int, rng *sim.RNG) Permutation {
	for try := 0; try < 64; try++ {
		perm := rng.Perm(n)
		ok := true
		for i, v := range perm {
			if i == v {
				ok = false
				break
			}
		}
		if ok || n < 2 {
			return Permutation{Partner: perm}
		}
	}
	return Permutation{Partner: rng.Perm(n)}
}

// Pick implements Pattern.
func (p Permutation) Pick(src int, _ uint64, _ *sim.RNG) int {
	return p.Partner[src]
}

// Diagonal concentrates 2/3 of each input's traffic on output i and 1/3
// on output i+1, a standard non-uniform stress pattern for crossbar
// schedulers.
type Diagonal struct{ N int }

// Pick implements Pattern.
func (d Diagonal) Pick(src int, _ uint64, rng *sim.RNG) int {
	if rng.Bernoulli(2.0 / 3.0) {
		return src % d.N
	}
	return (src + 1) % d.N
}

// Bernoulli is an i.i.d. slotted arrival process: in each slot a cell
// arrives with probability Load, destined per the Pattern.
type Bernoulli struct {
	Load         float64
	ControlShare float64 // fraction of arrivals that are control cells
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG
}

// NewBernoulli builds a uniform Bernoulli source for one port.
func NewBernoulli(src, n int, load float64, rng *sim.RNG) *Bernoulli {
	return &Bernoulli{Load: load, Pattern: Uniform{n}, Src: src, RNG: rng}
}

// Next implements Generator.
func (b *Bernoulli) Next(slot uint64) (Arrival, bool) {
	if !b.RNG.Bernoulli(b.Load) {
		return Arrival{}, false
	}
	a := Arrival{Dst: b.Pattern.Pick(b.Src, slot, b.RNG)}
	if b.ControlShare > 0 && b.RNG.Bernoulli(b.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}

// OnOff is a two-state Markov-modulated source producing the bursty
// traffic of the Data Vortex comparison literature: in the ON state it
// emits a cell every slot toward a burst-constant destination. ON dwell
// times are 1 + Geometric draws with mean MeanBurst; OFF dwell times are
// Geometric with mean meanIdle() and support {0, 1, ...} — a zero-length
// OFF draw flips straight back ON (two bursts coalesce), which is what
// lets the long-run load match Load exactly even when the configured
// load forces a mean idle below one slot.
type OnOff struct {
	MeanBurst    float64 // mean ON duration in slots (>= 1)
	Load         float64 // long-run offered load in cells/slot
	ControlShare float64
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG

	on        bool
	remaining int
	burstDst  int
}

// NewOnOff builds a bursty source with the given mean burst length and
// long-run load for one port.
func NewOnOff(src, n int, load, meanBurst float64, rng *sim.RNG) *OnOff {
	if meanBurst < 1 {
		meanBurst = 1
	}
	return &OnOff{
		MeanBurst: meanBurst,
		Load:      load,
		Pattern:   Uniform{n},
		Src:       src,
		RNG:       rng,
	}
}

// meanIdle derives the OFF dwell time that yields the configured load:
// load = ON / (ON + OFF)  =>  OFF = ON * (1-load)/load.
func (o *OnOff) meanIdle() float64 {
	if o.Load >= 1 {
		return 0
	}
	if o.Load <= 0 {
		return 1e18
	}
	return o.MeanBurst * (1 - o.Load) / o.Load
}

// Next implements Generator.
func (o *OnOff) Next(slot uint64) (Arrival, bool) {
	for o.remaining == 0 {
		o.on = !o.on
		if o.on {
			o.remaining = 1 + o.RNG.Geometric(1/o.MeanBurst)
			o.burstDst = o.Pattern.Pick(o.Src, slot, o.RNG)
		} else {
			mi := o.meanIdle()
			if mi <= 0 {
				o.on = true
				o.remaining = 1 + o.RNG.Geometric(1/o.MeanBurst)
				o.burstDst = o.Pattern.Pick(o.Src, slot, o.RNG)
				break
			}
			// Geometric with success probability 1/(1+mi) has mean mi
			// over support {0, 1, ...}: the dwell the load equation
			// asks for. (The old draw added a constant extra slot —
			// mean mi+1 — so a 0.95-load source realized only ~0.90.)
			o.remaining = o.RNG.Geometric(1 / (1 + mi))
		}
	}
	o.remaining--
	if !o.on {
		return Arrival{}, false
	}
	a := Arrival{Dst: o.burstDst}
	if o.ControlShare > 0 && o.RNG.Bernoulli(o.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}

// Bimodal mixes the paper's two traffic modes explicitly: control cells
// arrive as a low-rate Bernoulli process while data cells arrive as a
// (possibly bursty) bulk process. Control cells win ties in the same
// slot, mirroring strict fabric priority; the displaced data cell is
// not lost — it waits in a FIFO and goes out on the next control-free
// slot, so the offered data load matches the configured data load.
type Bimodal struct {
	Control *Bernoulli
	Data    Generator

	// pending holds data arrivals displaced by same-slot control wins,
	// oldest first (head-indexed so steady-state pops do not shift).
	pending []Arrival
	head    int
}

// NewBimodal builds a bimodal source: dataLoad bulk data plus ctlLoad
// uniform control traffic for one port.
func NewBimodal(src, n int, dataLoad, ctlLoad float64, rng *sim.RNG) *Bimodal {
	ctl := NewBernoulli(src, n, ctlLoad, rng.Fork(1))
	ctl.ControlShare = 1
	return &Bimodal{
		Control: ctl,
		Data:    NewBernoulli(src, n, dataLoad, rng.Fork(2)),
	}
}

// Pending reports how many displaced data cells are waiting for a
// control-free slot.
func (b *Bimodal) Pending() int { return len(b.pending) - b.head }

func (b *Bimodal) push(a Arrival) {
	b.pending = append(b.pending, a)
}

func (b *Bimodal) pop() (Arrival, bool) {
	if b.head == len(b.pending) {
		return Arrival{}, false
	}
	a := b.pending[b.head]
	b.head++
	if b.head == len(b.pending) {
		b.pending = b.pending[:0]
		b.head = 0
	}
	return a, true
}

// Next implements Generator. Both sub-processes are sampled every slot
// (so their RNG streams advance independently of who wins); data
// arrivals pass through the pending FIFO, which preserves their order
// and defers them past slots a control cell claims.
func (b *Bimodal) Next(slot uint64) (Arrival, bool) {
	ctl, ctlOK := b.Control.Next(slot)
	if data, ok := b.Data.Next(slot); ok {
		b.push(data)
	}
	if ctlOK {
		return ctl, true
	}
	return b.pop()
}
