// Package traffic provides the synthetic workload generators used in the
// paper's delay-versus-throughput studies: Bernoulli uniform arrivals,
// bursty on/off sources, hotspot and permutation destination patterns,
// and the bimodal control/data mix the requirements table assumes.
//
// Generators are slotted: each ingress port is asked once per packet
// cycle whether a cell arrived and, if so, for which destination and
// class. All randomness comes from seeded per-port sim.RNG streams, so
// workloads are reproducible and independent across ports.
package traffic

import (
	"fmt"

	"repro/internal/sim"
)

// Arrival describes one generated cell-arrival at an ingress port.
type Arrival struct {
	Dst   int
	Class ClassChoice
}

// ClassChoice selects the traffic mode of a generated cell.
type ClassChoice uint8

// Class choices; mirror packet.Class without importing it so the traffic
// package stays independent of the cell representation.
const (
	ClassData ClassChoice = iota
	ClassControl
)

// Generator produces arrivals for one ingress port, one slot at a time.
type Generator interface {
	// Next reports whether a cell arrives at this port in this slot and,
	// if so, its destination port and class.
	Next(slot uint64) (Arrival, bool)
}

// Pattern chooses a destination for a given source at a given slot.
type Pattern interface {
	// Pick returns a destination port in [0, N).
	Pick(src int, slot uint64, rng *sim.RNG) int
}

// Uniform spreads destinations uniformly over all ports except the
// source itself (self-traffic never crosses the fabric).
type Uniform struct{ N int }

// Pick implements Pattern.
func (u Uniform) Pick(src int, _ uint64, rng *sim.RNG) int {
	if u.N <= 1 {
		return src
	}
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Hotspot sends a fraction of traffic to one hot output and spreads the
// remainder uniformly. It models the overload scenarios used to exercise
// flow control (§IV.B).
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // fraction of cells aimed at Hot
}

// Pick implements Pattern.
func (h Hotspot) Pick(src int, slot uint64, rng *sim.RNG) int {
	if rng.Bernoulli(h.Fraction) {
		return h.Hot
	}
	return Uniform{h.N}.Pick(src, slot, rng)
}

// Permutation sends all traffic from port i to a fixed partner, the
// worst case for schedulers that rely on destination diversity.
type Permutation struct {
	Partner []int
}

// NewShiftPermutation builds the classic shift-by-k permutation.
func NewShiftPermutation(n, k int) Permutation {
	p := Permutation{Partner: make([]int, n)}
	for i := range p.Partner {
		p.Partner[i] = (i + k) % n
	}
	return p
}

// NewRandomPermutation builds a random permutation with no fixed points
// where possible (a derangement attempt; falls back after retries).
func NewRandomPermutation(n int, rng *sim.RNG) Permutation {
	for try := 0; try < 64; try++ {
		perm := rng.Perm(n)
		ok := true
		for i, v := range perm {
			if i == v {
				ok = false
				break
			}
		}
		if ok || n < 2 {
			return Permutation{Partner: perm}
		}
	}
	return Permutation{Partner: rng.Perm(n)}
}

// Pick implements Pattern.
func (p Permutation) Pick(src int, _ uint64, _ *sim.RNG) int {
	return p.Partner[src]
}

// Diagonal concentrates 2/3 of each input's traffic on output i and 1/3
// on output i+1, a standard non-uniform stress pattern for crossbar
// schedulers.
type Diagonal struct{ N int }

// Pick implements Pattern.
func (d Diagonal) Pick(src int, _ uint64, rng *sim.RNG) int {
	if rng.Bernoulli(2.0 / 3.0) {
		return src % d.N
	}
	return (src + 1) % d.N
}

// Bernoulli is an i.i.d. slotted arrival process: in each slot a cell
// arrives with probability Load, destined per the Pattern.
type Bernoulli struct {
	Load         float64
	ControlShare float64 // fraction of arrivals that are control cells
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG
}

// NewBernoulli builds a uniform Bernoulli source for one port.
func NewBernoulli(src, n int, load float64, rng *sim.RNG) *Bernoulli {
	return &Bernoulli{Load: load, Pattern: Uniform{n}, Src: src, RNG: rng}
}

// Next implements Generator.
func (b *Bernoulli) Next(slot uint64) (Arrival, bool) {
	if !b.RNG.Bernoulli(b.Load) {
		return Arrival{}, false
	}
	a := Arrival{Dst: b.Pattern.Pick(b.Src, slot, b.RNG)}
	if b.ControlShare > 0 && b.RNG.Bernoulli(b.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}

// OnOff is a two-state Markov-modulated source producing the bursty
// traffic of the Data Vortex comparison literature: in the ON state it
// emits a cell every slot toward a burst-constant destination; state
// dwell times are geometric with the given mean burst and idle lengths.
type OnOff struct {
	MeanBurst    float64 // mean ON duration in slots (>= 1)
	Load         float64 // long-run offered load in cells/slot
	ControlShare float64
	Pattern      Pattern
	Src          int
	RNG          *sim.RNG

	on        bool
	remaining int
	burstDst  int
}

// NewOnOff builds a bursty source with the given mean burst length and
// long-run load for one port.
func NewOnOff(src, n int, load, meanBurst float64, rng *sim.RNG) *OnOff {
	if meanBurst < 1 {
		meanBurst = 1
	}
	return &OnOff{
		MeanBurst: meanBurst,
		Load:      load,
		Pattern:   Uniform{n},
		Src:       src,
		RNG:       rng,
	}
}

// meanIdle derives the OFF dwell time that yields the configured load:
// load = ON / (ON + OFF)  =>  OFF = ON * (1-load)/load.
func (o *OnOff) meanIdle() float64 {
	if o.Load >= 1 {
		return 0
	}
	if o.Load <= 0 {
		return 1e18
	}
	return o.MeanBurst * (1 - o.Load) / o.Load
}

// Next implements Generator.
func (o *OnOff) Next(slot uint64) (Arrival, bool) {
	for o.remaining == 0 {
		o.on = !o.on
		if o.on {
			o.remaining = 1 + o.RNG.Geometric(1/o.MeanBurst)
			o.burstDst = o.Pattern.Pick(o.Src, slot, o.RNG)
		} else {
			mi := o.meanIdle()
			if mi <= 0 {
				o.on = true
				o.remaining = 1 + o.RNG.Geometric(1/o.MeanBurst)
				o.burstDst = o.Pattern.Pick(o.Src, slot, o.RNG)
				break
			}
			o.remaining = 1 + o.RNG.Geometric(1/(1+mi))
		}
	}
	o.remaining--
	if !o.on {
		return Arrival{}, false
	}
	a := Arrival{Dst: o.burstDst}
	if o.ControlShare > 0 && o.RNG.Bernoulli(o.ControlShare) {
		a.Class = ClassControl
	}
	return a, true
}

// Bimodal mixes the paper's two traffic modes explicitly: control cells
// arrive as a low-rate Bernoulli process while data cells arrive as a
// (possibly bursty) bulk process. Control cells win ties in the same
// slot, mirroring strict fabric priority.
type Bimodal struct {
	Control *Bernoulli
	Data    Generator
}

// NewBimodal builds a bimodal source: dataLoad bulk data plus ctlLoad
// uniform control traffic for one port.
func NewBimodal(src, n int, dataLoad, ctlLoad float64, rng *sim.RNG) *Bimodal {
	ctl := NewBernoulli(src, n, ctlLoad, rng.Fork(1))
	ctl.ControlShare = 1
	return &Bimodal{
		Control: ctl,
		Data:    NewBernoulli(src, n, dataLoad, rng.Fork(2)),
	}
}

// Next implements Generator.
func (b *Bimodal) Next(slot uint64) (Arrival, bool) {
	if a, ok := b.Control.Next(slot); ok {
		return a, true
	}
	return b.Data.Next(slot)
}

// Config names a workload so experiment harnesses can build per-port
// generator sets uniformly.
type Config struct {
	Kind         Kind
	N            int     // port count
	Load         float64 // offered load per port, cells/slot
	ControlShare float64 // fraction of control cells (Bernoulli kinds)
	MeanBurst    float64 // OnOff mean burst length in slots
	HotFraction  float64 // Hotspot fraction
	HotPort      int
	Shift        int // Shift permutation distance
	Seed         uint64
}

// Kind enumerates the built-in workload families.
type Kind uint8

// Workload families.
const (
	KindUniform Kind = iota
	KindBursty
	KindHotspot
	KindPermutation
	KindDiagonal
	KindBimodal
)

// String names the workload kind.
func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "uniform"
	case KindBursty:
		return "bursty"
	case KindHotspot:
		return "hotspot"
	case KindPermutation:
		return "permutation"
	case KindDiagonal:
		return "diagonal"
	case KindBimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Build constructs one generator per port for the named workload.
func Build(cfg Config) ([]Generator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("traffic: invalid port count %d", cfg.N)
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", cfg.Load)
	}
	root := sim.NewRNG(cfg.Seed)
	gens := make([]Generator, cfg.N)
	var perm Permutation
	if cfg.Kind == KindPermutation {
		if cfg.Shift != 0 {
			perm = NewShiftPermutation(cfg.N, cfg.Shift)
		} else {
			perm = NewRandomPermutation(cfg.N, root.Fork(9999))
		}
	}
	for i := 0; i < cfg.N; i++ {
		rng := root.Fork(uint64(i) + 1)
		switch cfg.Kind {
		case KindUniform:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.ControlShare = cfg.ControlShare
			gens[i] = b
		case KindBursty:
			mb := cfg.MeanBurst
			if mb == 0 {
				mb = 16
			}
			gens[i] = NewOnOff(i, cfg.N, cfg.Load, mb, rng)
		case KindHotspot:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			frac := cfg.HotFraction
			if frac == 0 {
				frac = 0.5
			}
			b.Pattern = Hotspot{N: cfg.N, Hot: cfg.HotPort, Fraction: frac}
			gens[i] = b
		case KindPermutation:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.Pattern = perm
			gens[i] = b
		case KindDiagonal:
			b := NewBernoulli(i, cfg.N, cfg.Load, rng)
			b.Pattern = Diagonal{cfg.N}
			gens[i] = b
		case KindBimodal:
			cs := cfg.ControlShare
			if cs == 0 {
				cs = 0.05
			}
			gens[i] = NewBimodal(i, cfg.N, cfg.Load*(1-cs), cfg.Load*cs, rng)
		default:
			return nil, fmt.Errorf("traffic: unknown kind %v", cfg.Kind)
		}
	}
	return gens, nil
}
