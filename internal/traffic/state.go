// Checkpoint codecs for the workload generators. A generator's mutable
// state is its RNG stream plus whatever burst/phase machinery spans
// slots; the pattern, rates, and topology parameters are configuration,
// rebuilt by Build from the job spec, and are not serialized. Each codec
// opens a section named after the generator kind, so restoring a
// checkpoint into a differently built workload fails loudly instead of
// silently misdrawing.
package traffic

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/sim"
)

// StateCodec is implemented by every Generator in this package: the
// slot-to-slot state can be checkpointed and restored bit-exactly.
type StateCodec interface {
	// SaveState writes the generator's mutable state.
	SaveState(e *ckpt.Encoder)
	// LoadState restores state written by SaveState into a generator
	// built from the same configuration.
	LoadState(d *ckpt.Decoder) error
}

// saveRNG writes one RNG stream as an "rng" record.
func saveRNG(e *ckpt.Encoder, r *sim.RNG) {
	st := r.State()
	e.Put("rng", ckpt.Uint(st[0]), ckpt.Uint(st[1]), ckpt.Uint(st[2]), ckpt.Uint(st[3]))
}

// loadRNG restores one RNG stream from an "rng" record.
func loadRNG(d *ckpt.Decoder, r *sim.RNG) error {
	rec := d.Record("rng")
	var st [4]uint64
	st[0], st[1], st[2], st[3] = rec.Uint(), rec.Uint(), rec.Uint(), rec.Uint()
	if err := rec.Done(); err != nil {
		return err
	}
	return r.Restore(st)
}

// SaveState implements StateCodec.
func (b *Bernoulli) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-bernoulli")
	saveRNG(e, b.RNG)
	e.End("gen-bernoulli")
}

// LoadState implements StateCodec.
func (b *Bernoulli) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-bernoulli"); err != nil {
		return err
	}
	if err := loadRNG(d, b.RNG); err != nil {
		return err
	}
	return d.End("gen-bernoulli")
}

// SaveState implements StateCodec.
func (o *OnOff) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-onoff")
	saveRNG(e, o.RNG)
	e.Put("burst", ckpt.Bool(o.on), ckpt.Int(int64(o.remaining)), ckpt.Int(int64(o.burstDst)))
	e.End("gen-onoff")
}

// LoadState implements StateCodec.
func (o *OnOff) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-onoff"); err != nil {
		return err
	}
	if err := loadRNG(d, o.RNG); err != nil {
		return err
	}
	r := d.Record("burst")
	o.on, o.remaining, o.burstDst = r.Bool(), r.IntAsInt(), r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	return d.End("gen-onoff")
}

// SaveState implements StateCodec: both sub-processes plus the displaced
// data cells still waiting in the pending FIFO, oldest first.
func (b *Bimodal) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-bimodal")
	b.Control.SaveState(e)
	data, ok := b.Data.(StateCodec)
	if !ok {
		e.Fail(fmt.Errorf("traffic: bimodal data sub-generator %T is not checkpointable", b.Data))
		return
	}
	data.SaveState(e)
	e.Put("pending", ckpt.Int(int64(b.Pending())))
	for i := b.head; i < len(b.pending); i++ {
		a := b.pending[i]
		e.Put("arr", ckpt.Int(int64(a.Dst)), ckpt.Uint(uint64(a.Class)))
	}
	e.End("gen-bimodal")
}

// LoadState implements StateCodec.
func (b *Bimodal) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-bimodal"); err != nil {
		return err
	}
	if err := b.Control.LoadState(d); err != nil {
		return err
	}
	data, ok := b.Data.(StateCodec)
	if !ok {
		return fmt.Errorf("traffic: bimodal data sub-generator %T is not checkpointable", b.Data)
	}
	if err := data.LoadState(d); err != nil {
		return err
	}
	r := d.Record("pending")
	n := r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("traffic: bimodal checkpoint pending count %d", n)
	}
	b.pending = b.pending[:0]
	b.head = 0
	for i := 0; i < n; i++ {
		ar := d.Record("arr")
		a := Arrival{Dst: ar.IntAsInt(), Class: ClassChoice(ar.Uint())}
		if err := ar.Done(); err != nil {
			return err
		}
		if a.Class > ClassControl {
			return fmt.Errorf("traffic: bimodal pending arrival class %d out of range", a.Class)
		}
		b.pending = append(b.pending, a)
	}
	return d.End("gen-bimodal")
}

// SaveState implements StateCodec.
func (m *MMPP) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-mmpp")
	saveRNG(e, m.RNG)
	e.Put("dwell", ckpt.Bool(m.high), ckpt.Int(int64(m.remaining)))
	e.End("gen-mmpp")
}

// LoadState implements StateCodec.
func (m *MMPP) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-mmpp"); err != nil {
		return err
	}
	if err := loadRNG(d, m.RNG); err != nil {
		return err
	}
	r := d.Record("dwell")
	m.high, m.remaining = r.Bool(), r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	return d.End("gen-mmpp")
}

// SaveState implements StateCodec. meanOn is derived from configuration
// in the constructor and is not state.
func (p *ParetoOnOff) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-pareto")
	saveRNG(e, p.RNG)
	e.Put("burst", ckpt.Bool(p.on), ckpt.Int(int64(p.remaining)), ckpt.Int(int64(p.burstDst)))
	e.End("gen-pareto")
}

// LoadState implements StateCodec.
func (p *ParetoOnOff) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-pareto"); err != nil {
		return err
	}
	if err := loadRNG(d, p.RNG); err != nil {
		return err
	}
	r := d.Record("burst")
	p.on, p.remaining, p.burstDst = r.Bool(), r.IntAsInt(), r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	return d.End("gen-pareto")
}

// SaveState implements StateCodec.
func (g *Incast) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-incast")
	saveRNG(e, g.RNG)
	e.End("gen-incast")
}

// LoadState implements StateCodec.
func (g *Incast) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-incast"); err != nil {
		return err
	}
	if err := loadRNG(d, g.RNG); err != nil {
		return err
	}
	return d.End("gen-incast")
}

// SaveState implements StateCodec.
func (g *AllToAll) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-alltoall")
	saveRNG(e, g.RNG)
	e.End("gen-alltoall")
}

// LoadState implements StateCodec.
func (g *AllToAll) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-alltoall"); err != nil {
		return err
	}
	if err := loadRNG(d, g.RNG); err != nil {
		return err
	}
	return d.End("gen-alltoall")
}

// SaveState implements StateCodec: the ring schedule is a pure function
// of (slot, configuration); only the kind marker is recorded.
func (g *RingAllReduce) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-ring")
	e.End("gen-ring")
}

// LoadState implements StateCodec.
func (g *RingAllReduce) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-ring"); err != nil {
		return err
	}
	return d.End("gen-ring")
}

// SaveState implements StateCodec.
func (g *TreeAllReduce) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-tree")
	saveRNG(e, g.RNG)
	e.End("gen-tree")
}

// LoadState implements StateCodec.
func (g *TreeAllReduce) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-tree"); err != nil {
		return err
	}
	if err := loadRNG(d, g.RNG); err != nil {
		return err
	}
	return d.End("gen-tree")
}

// SaveState implements StateCodec: the replay cursor.
func (p *TracePlayer) SaveState(e *ckpt.Encoder) {
	e.Begin("gen-trace")
	e.Put("cursor", ckpt.Int(int64(p.pos)), ckpt.Int(int64(len(p.events))))
	e.End("gen-trace")
}

// LoadState implements StateCodec.
func (p *TracePlayer) LoadState(d *ckpt.Decoder) error {
	if err := d.Begin("gen-trace"); err != nil {
		return err
	}
	r := d.Record("cursor")
	pos, n := r.IntAsInt(), r.IntAsInt()
	if err := r.Done(); err != nil {
		return err
	}
	if n != len(p.events) {
		return fmt.Errorf("traffic: trace checkpoint has %d events for this port, live player %d", n, len(p.events))
	}
	if pos < 0 || pos > n {
		return fmt.Errorf("traffic: trace checkpoint cursor %d out of [0,%d]", pos, n)
	}
	p.pos = pos
	return d.End("gen-trace")
}

// Interface conformance: every generator kind checkpoints.
var (
	_ StateCodec = (*Bernoulli)(nil)
	_ StateCodec = (*OnOff)(nil)
	_ StateCodec = (*Bimodal)(nil)
	_ StateCodec = (*MMPP)(nil)
	_ StateCodec = (*ParetoOnOff)(nil)
	_ StateCodec = (*Incast)(nil)
	_ StateCodec = (*AllToAll)(nil)
	_ StateCodec = (*RingAllReduce)(nil)
	_ StateCodec = (*TreeAllReduce)(nil)
	_ StateCodec = (*TracePlayer)(nil)
)
