package traffic

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// measure runs every generator of a built workload for slots slots and
// returns per-port arrival counts plus a destination histogram.
func measureAll(t *testing.T, gens []Generator, slots uint64) (perPort []int, dstCount []int) {
	t.Helper()
	n := len(gens)
	perPort = make([]int, n)
	dstCount = make([]int, n)
	for s := uint64(0); s < slots; s++ {
		for p, g := range gens {
			if a, ok := g.Next(s); ok {
				perPort[p]++
				dstCount[a.Dst]++
			}
		}
	}
	return perPort, dstCount
}

// realizedLoad builds cfg and reports the long-run mean offered load
// per port over slots slots.
func realizedLoad(t *testing.T, cfg Config, slots uint64) float64 {
	t.Helper()
	gens, err := Build(cfg)
	if err != nil {
		t.Fatalf("build %v: %v", cfg.Kind, err)
	}
	perPort, _ := measureAll(t, gens, slots)
	total := 0
	for _, c := range perPort {
		total += c
	}
	return float64(total) / float64(slots) / float64(len(gens))
}

// TestOnOffRealizedLoadPinned is the regression for the OFF-dwell bug:
// the old draw 1+Geometric(1/(1+mi)) had mean mi+1, so a configured
// 0.95 load realized only ~0.90. The fixed source must land within 1%
// (relative) of the configured load at both a moderate and a
// near-saturation point.
func TestOnOffRealizedLoadPinned(t *testing.T) {
	const slots = 1_000_000
	for _, load := range []float64{0.5, 0.95} {
		g := NewOnOff(0, 64, load, 16, sim.NewRNG(11))
		n := 0
		for s := uint64(0); s < slots; s++ {
			if _, ok := g.Next(s); ok {
				n++
			}
		}
		got := float64(n) / slots
		if rel := math.Abs(got-load) / load; rel > 0.01 {
			t.Errorf("load %v: realized %v (%.2f%% off, want within 1%%)", load, got, rel*100)
		}
	}
}

// TestBimodalLoadAccounting is the regression for the displaced-data
// bug: control cells win same-slot ties but must defer, not drop, the
// colliding data arrival, so both sub-process loads are realized in
// full.
func TestBimodalLoadAccounting(t *testing.T) {
	const slots = 400_000
	const dataLoad, ctlLoad = 0.7, 0.1
	b := NewBimodal(0, 64, dataLoad, ctlLoad, sim.NewRNG(17))
	ctl, data := 0, 0
	for s := uint64(0); s < slots; s++ {
		if a, ok := b.Next(s); ok {
			if a.Class == ClassControl {
				ctl++
			} else {
				data++
			}
		}
	}
	if got := float64(ctl) / slots; math.Abs(got-ctlLoad) > 0.005 {
		t.Errorf("control load %v want %v", got, ctlLoad)
	}
	// The old Next dropped the data arrival whenever control won the
	// slot, realizing only dataLoad*(1-ctlLoad) ~ 0.63 here.
	if got := float64(data) / slots; math.Abs(got-dataLoad) > 0.007 {
		t.Errorf("data load %v want %v (displaced cells must defer, not drop)", got, dataLoad)
	}
	if p := b.Pending(); p > 64 {
		t.Errorf("pending backlog %d after a subcritical run", p)
	}
}

// TestHotspotNoSelfTraffic is the regression for the src == Hot bug:
// the hot port itself must never target Hot.
func TestHotspotNoSelfTraffic(t *testing.T) {
	h := Hotspot{N: 16, Hot: 5, Fraction: 0.9}
	rng := sim.NewRNG(23)
	for i := 0; i < 50_000; i++ {
		if d := h.Pick(5, uint64(i), rng); d == 5 {
			t.Fatal("hot port picked itself")
		}
	}
}

// TestRealizedLoadAllKinds checks the package's load-accounting
// contract for every generated kind: the realized long-run load matches
// the kind's documented offered load.
func TestRealizedLoadAllKinds(t *testing.T) {
	const n, load = 16, 0.6
	const slots = 200_000
	for _, cfg := range buildableKinds(n, load) {
		cfg := cfg
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			want := load
			tol := 0.01
			switch cfg.Kind {
			case KindIncast:
				// Load is per active storm port; with the default
				// fan-in of N/4 the per-port long-run average is
				// Load * Fanin / N.
				want = load * float64(n/4) / float64(n)
			case KindTreeAllReduce:
				// Ports are active only while their tree level owns the
				// step; the long-run average depends on tree shape, so
				// only a loose sanity band applies.
				got := realizedLoad(t, cfg, slots)
				if got <= 0 || got >= load {
					t.Errorf("tree-allreduce realized %v, want in (0, %v)", got, load)
				}
				return
			case KindBursty, KindParetoOnOff, KindMMPP:
				tol = 0.02 // burst-scale variance converges slower
			case KindRingAllReduce:
				// Gap quantization: chunk 64 at load 0.6 gives
				// 64/(64+43) = 0.5981...
				want = 64.0 / (64 + math.Round(64*(1-load)/load))
				tol = 0.001
			}
			got := realizedLoad(t, cfg, slots)
			if math.Abs(got-want) > tol {
				t.Errorf("realized %v want %v +- %v", got, want, tol)
			}
		})
	}
}

// TestOnOffBurstMean pins the ON-dwell mean at the configured
// MeanBurst (the ON draw was always correct; this guards it).
func TestOnOffBurstMean(t *testing.T) {
	g := NewOnOff(0, 64, 0.3, 12, sim.NewRNG(31))
	bursts, burstSlots := 0, 0
	inBurst := false
	for s := uint64(0); s < 600_000; s++ {
		_, ok := g.Next(s)
		if ok {
			if !inBurst {
				bursts++
				inBurst = true
			}
			burstSlots++
		} else {
			inBurst = false
		}
	}
	// Observed ON-runs can concatenate when a zero-length OFF draw
	// coalesces bursts, which raises the run mean above MeanBurst by
	// the coalescing factor 1/(1-p0), p0 = P(OFF draw = 0) = 1/(1+mi).
	mi := 12 * (1 - 0.3) / 0.3
	wantRun := 12 * (1 + mi) / mi
	got := float64(burstSlots) / float64(bursts)
	if math.Abs(got-wantRun)/wantRun > 0.05 {
		t.Errorf("mean ON run %v want ~%v", got, wantRun)
	}
}

// TestMMPPMoments checks the two-state modulated source: long-run load
// exact, high/low rate split as derived, dwell means near MeanDwell.
func TestMMPPMoments(t *testing.T) {
	const load, dwell = 0.3, 32.0
	g := NewMMPP(0, 64, load, dwell, sim.NewRNG(37))
	if g.HighRate != 0.6 || g.LowRate != 0 {
		t.Fatalf("rate split hi=%v lo=%v, want 0.6/0", g.HighRate, g.LowRate)
	}
	arr := 0
	const slots = 500_000
	for s := uint64(0); s < slots; s++ {
		if _, ok := g.Next(s); ok {
			arr++
		}
	}
	if got := float64(arr) / slots; math.Abs(got-load) > 0.01 {
		t.Errorf("mmpp load %v want %v", got, load)
	}
	// Above load 0.5 the high state saturates at 1 cell/slot.
	sat := NewMMPP(0, 64, 0.8, dwell, sim.NewRNG(38))
	if sat.HighRate != 1 || math.Abs(sat.LowRate-0.6) > 1e-12 {
		t.Errorf("saturated split hi=%v lo=%v, want 1/0.6", sat.HighRate, sat.LowRate)
	}
}

// TestParetoOnOffMoments checks the heavy-tail source: realized load
// within tolerance (the OFF dwell is derived from the discretized burst
// mean, so the load equation is exact in expectation) and the empirical
// burst mean near paretoCeilMean.
func TestParetoOnOffMoments(t *testing.T) {
	const load = 0.5
	g := NewParetoOnOff(0, 64, load, 16, 1.5, sim.NewRNG(41))
	wantMean := paretoCeilMean(g.Xm, g.Alpha)
	if wantMean < 16 || wantMean > 18 {
		t.Fatalf("discretized burst mean %v implausible for target 16", wantMean)
	}
	arr := 0
	const slots = 2_000_000 // heavy tails need a long window
	for s := uint64(0); s < slots; s++ {
		if _, ok := g.Next(s); ok {
			arr++
		}
	}
	if got := float64(arr) / slots; math.Abs(got-load) > 0.03 {
		t.Errorf("pareto load %v want %v", got, load)
	}
}

// TestParetoCeilMeanMatchesSampling cross-checks the analytic
// discretized mean against direct Monte-Carlo sampling of drawBurst.
func TestParetoCeilMeanMatchesSampling(t *testing.T) {
	g := NewParetoOnOff(0, 8, 0.5, 16, 1.5, sim.NewRNG(43))
	want := paretoCeilMean(g.Xm, g.Alpha)
	sum := 0.0
	const draws = 2_000_000
	for i := 0; i < draws; i++ {
		sum += float64(g.drawBurst())
	}
	got := sum / draws
	// Infinite-variance territory: allow a wide band, the point is to
	// catch a wrong formula (off by the old +1 bug class), not noise.
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("sampled burst mean %v, analytic %v", got, want)
	}
}

// TestHotspotDestinationMarginal checks the full destination marginal
// of a built hotspot workload: the hot port receives its direct
// fraction plus the uniform residue, everyone else splits the rest.
func TestHotspotDestinationMarginal(t *testing.T) {
	const n = 16
	gens, err := Build(Config{Kind: KindHotspot, N: n, Load: 0.8, HotPort: 3, HotFraction: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, dst := measureAll(t, gens, 100_000)
	total := 0
	for _, c := range dst {
		total += c
	}
	// Each of the N-1 non-hot ports hits Hot with probability
	// 0.5 + 0.5/(N-1); the hot port itself never does.
	hotShare := float64(dst[3]) / float64(total)
	wantHot := (0.5 + 0.5/float64(n-1)) * float64(n-1) / float64(n)
	if math.Abs(hotShare-wantHot) > 0.02 {
		t.Errorf("hot destination share %v want ~%v", hotShare, wantHot)
	}
}

// TestDiagonalDestinationMarginal checks the built diagonal workload's
// marginal: output i receives 2/3 from port i and 1/3 from port i-1.
func TestDiagonalDestinationMarginal(t *testing.T) {
	const n = 8
	gens, err := Build(Config{Kind: KindDiagonal, N: n, Load: 0.9, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, dst := measureAll(t, gens, 100_000)
	total := 0
	for _, c := range dst {
		total += c
	}
	for d, c := range dst {
		if got := float64(c) / float64(total); math.Abs(got-1.0/n) > 0.01 {
			t.Errorf("diagonal marginal at %d: %v want %v", d, got, 1.0/n)
		}
	}
}

// TestPermutationDestinationMarginal: every output receives exactly one
// input's traffic.
func TestPermutationDestinationMarginal(t *testing.T) {
	const n = 16
	gens, err := Build(Config{Kind: KindPermutation, N: n, Load: 0.7, Shift: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	perPort, dst := measureAll(t, gens, 50_000)
	for i := 0; i < n; i++ {
		if dst[(i+5)%n] != perPort[i] {
			t.Errorf("port %d: sent %d, partner received %d", i, perPort[i], dst[(i+5)%n])
		}
	}
}

// TestIncastMoments checks the fan-in storm: only the victim receives,
// storm ports offer Load while storming, and the victim rotates.
func TestIncastMoments(t *testing.T) {
	const n, fanin, load = 8, 3, 0.9
	const epoch = 128
	gens, err := Build(Config{Kind: KindIncast, N: n, Load: load, Fanin: fanin, EpochSlots: epoch, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// One full rotation: n epochs.
	victims := make(map[int]bool)
	arrivals := 0
	for s := uint64(0); s < n*epoch; s++ {
		wantVictim := int((s / epoch) % n)
		for p, g := range gens {
			a, ok := g.Next(s)
			if !ok {
				continue
			}
			arrivals++
			if a.Dst != wantVictim {
				t.Fatalf("slot %d: port %d hit %d, want victim %d", s, p, a.Dst, wantVictim)
			}
			if p == wantVictim {
				t.Fatalf("victim %d stormed itself", p)
			}
			victims[a.Dst] = true
		}
	}
	if len(victims) != n {
		t.Errorf("rotation covered %d victims, want %d", len(victims), n)
	}
	want := float64(n*epoch) * fanin * load
	if got := float64(arrivals); math.Abs(got-want)/want > 0.05 {
		t.Errorf("storm arrivals %v want ~%v", got, want)
	}
}

// TestAllToAllSchedule checks the phased exchange: within a phase the
// destination is fixed, across N-1 phases every partner is visited.
func TestAllToAllSchedule(t *testing.T) {
	const n = 8
	const phase = 32
	g := NewAllToAll(2, n, phase, 1.0, sim.NewRNG(29))
	seen := make(map[int]bool)
	for s := uint64(0); s < (n-1)*phase; s++ {
		a, ok := g.Next(s)
		if !ok {
			t.Fatalf("load-1 alltoall idle at slot %d", s)
		}
		wantDst := (2 + 1 + int((s/phase)%(n-1))) % n
		if a.Dst != wantDst {
			t.Fatalf("slot %d: dst %d want %d", s, a.Dst, wantDst)
		}
		seen[a.Dst] = true
	}
	if len(seen) != n-1 {
		t.Errorf("visited %d partners, want %d", len(seen), n-1)
	}
}

// TestRingAllReduceSchedule checks the deterministic ring cadence: dst
// always the ring successor, duty cycle chunk/(chunk+gap).
func TestRingAllReduceSchedule(t *testing.T) {
	g := NewRingAllReduce(3, 8, 64, 0.5)
	if g.GapSlots != 64 {
		t.Fatalf("gap %d want 64 at load 0.5", g.GapSlots)
	}
	active := 0
	const slots = 12_800
	for s := uint64(0); s < slots; s++ {
		a, ok := g.Next(s)
		if !ok {
			continue
		}
		active++
		if a.Dst != 4 {
			t.Fatalf("ring dst %d want 4", a.Dst)
		}
	}
	if got := float64(active) / slots; got != 0.5 {
		t.Errorf("ring duty cycle %v want exactly 0.5", got)
	}
}

// TestTreeAllReduceSchedule checks the sweep structure: reduce steps
// send only to parents (deepest level first), broadcast steps only to
// children, and the root is the last reduce step's sole target.
func TestTreeAllReduceSchedule(t *testing.T) {
	const n = 8 // levels 0..3, depth 3
	const phase = 16
	gens, err := Build(Config{Kind: KindTreeAllReduce, N: n, Load: 1.0, PhaseSlots: phase, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	depth := treeLevel(n - 1)
	if depth != 3 {
		t.Fatalf("depth %d want 3", depth)
	}
	for s := uint64(0); s < uint64(2*depth)*phase; s++ {
		step := int((s / phase) % uint64(2*depth))
		for p, g := range gens {
			a, ok := g.Next(s)
			if !ok {
				continue
			}
			if step < depth {
				if treeLevel(p) != depth-step {
					t.Fatalf("reduce step %d: port %d (level %d) active", step, p, treeLevel(p))
				}
				if a.Dst != (p-1)/2 {
					t.Fatalf("reduce step %d: port %d sent to %d, want parent %d", step, p, a.Dst, (p-1)/2)
				}
			} else {
				if treeLevel(p) != step-depth {
					t.Fatalf("broadcast step %d: port %d (level %d) active", step, p, treeLevel(p))
				}
				if a.Dst != 2*p+1 && a.Dst != 2*p+2 {
					t.Fatalf("broadcast step %d: port %d sent to %d, want a child", step, p, a.Dst)
				}
			}
		}
	}
}
