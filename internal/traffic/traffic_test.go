package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func measureLoad(t *testing.T, g Generator, slots int) float64 {
	t.Helper()
	n := 0
	for s := 0; s < slots; s++ {
		if _, ok := g.Next(uint64(s)); ok {
			n++
		}
	}
	return float64(n) / float64(slots)
}

func TestBernoulliLoad(t *testing.T) {
	for _, load := range []float64{0.1, 0.5, 0.9} {
		g := NewBernoulli(0, 64, load, sim.NewRNG(1))
		got := measureLoad(t, g, 200000)
		if math.Abs(got-load) > 0.01 {
			t.Errorf("load %v: measured %v", load, got)
		}
	}
}

func TestUniformExcludesSelf(t *testing.T) {
	u := Uniform{N: 16}
	rng := sim.NewRNG(2)
	counts := make([]int, 16)
	for i := 0; i < 60000; i++ {
		d := u.Pick(7, 0, rng)
		if d == 7 {
			t.Fatal("uniform pattern picked self")
		}
		counts[d]++
	}
	want := 60000.0 / 15
	for d, c := range counts {
		if d == 7 {
			continue
		}
		if math.Abs(float64(c)-want)/want > 0.08 {
			t.Errorf("destination %d: %d draws, want ~%.0f", d, c, want)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	h := Hotspot{N: 32, Hot: 3, Fraction: 0.5}
	rng := sim.NewRNG(3)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if h.Pick(9, 0, rng) == 3 {
			hot++
		}
	}
	// 50% direct plus uniform residue hitting the hot port ~1/31.
	want := 0.5 + 0.5/31
	if got := float64(hot) / draws; math.Abs(got-want) > 0.01 {
		t.Errorf("hot fraction %v want ~%v", got, want)
	}
}

func TestShiftPermutation(t *testing.T) {
	p := NewShiftPermutation(8, 3)
	for i := 0; i < 8; i++ {
		if got := p.Pick(i, 0, nil); got != (i+3)%8 {
			t.Errorf("shift perm: src %d -> %d", i, got)
		}
	}
}

func TestRandomPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%31) + 2
		p := NewRandomPermutation(n, sim.NewRNG(seed))
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			d := p.Partner[i]
			if d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomPermutationAvoidsFixedPoints(t *testing.T) {
	p := NewRandomPermutation(16, sim.NewRNG(5))
	for i, v := range p.Partner {
		if i == v {
			t.Errorf("fixed point at %d", i)
		}
	}
}

func TestDiagonalDistribution(t *testing.T) {
	d := Diagonal{N: 8}
	rng := sim.NewRNG(7)
	self, next := 0, 0
	const draws = 90000
	for i := 0; i < draws; i++ {
		switch d.Pick(2, 0, rng) {
		case 2:
			self++
		case 3:
			next++
		default:
			t.Fatal("diagonal picked an invalid destination")
		}
	}
	if got := float64(self) / draws; math.Abs(got-2.0/3) > 0.01 {
		t.Errorf("diagonal 2/3 share: %v", got)
	}
	if got := float64(next) / draws; math.Abs(got-1.0/3) > 0.01 {
		t.Errorf("diagonal 1/3 share: %v", got)
	}
}

func TestOnOffLoadAndBurstiness(t *testing.T) {
	g := NewOnOff(0, 64, 0.5, 16, sim.NewRNG(11))
	const slots = 400000
	arrivals := 0
	runs, runLen := 0, 0
	lastDst, inRun := -1, false
	for s := 0; s < slots; s++ {
		a, ok := g.Next(uint64(s))
		if ok {
			arrivals++
			if !inRun || a.Dst != lastDst {
				runs++
				inRun = true
				lastDst = a.Dst
			}
			runLen++
		} else {
			inRun = false
		}
	}
	load := float64(arrivals) / slots
	if math.Abs(load-0.5) > 0.03 {
		t.Errorf("on/off long-run load %v want 0.5", load)
	}
	meanRun := float64(runLen) / float64(runs)
	if meanRun < 8 {
		t.Errorf("mean burst run %v, want >> 1 for bursty traffic", meanRun)
	}
}

func TestBimodalClasses(t *testing.T) {
	b := NewBimodal(0, 64, 0.6, 0.05, sim.NewRNG(13))
	ctl, data := 0, 0
	const slots = 200000
	for s := 0; s < slots; s++ {
		if a, ok := b.Next(uint64(s)); ok {
			if a.Class == ClassControl {
				ctl++
			} else {
				data++
			}
		}
	}
	if got := float64(ctl) / slots; math.Abs(got-0.05) > 0.005 {
		t.Errorf("control load %v want 0.05", got)
	}
	// Data cells displaced by same-slot control wins are deferred, not
	// dropped, so the offered data load is the full configured 0.6 (the
	// old behaviour lost the colliding ~ctl*data fraction).
	if got := float64(data) / slots; math.Abs(got-0.6) > 0.01 {
		t.Errorf("data load %v want 0.6", got)
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero ports", Config{Kind: KindUniform, N: 0, Load: 0.5}},
		{"load > 1", Config{Kind: KindUniform, N: 4, Load: 1.5}},
		{"unknown kind", Config{Kind: Kind(99), N: 4, Load: 0.5}},
		{"hotspot fraction unset", Config{Kind: KindHotspot, N: 4, Load: 0.5, HotPort: 0}},
		{"hotspot fraction > 1", Config{Kind: KindHotspot, N: 4, Load: 0.5, HotFraction: 1.5}},
		{"hotspot fraction < 0", Config{Kind: KindHotspot, N: 4, Load: 0.5, HotFraction: -0.5}},
		{"hot port >= N", Config{Kind: KindHotspot, N: 4, Load: 0.5, HotFraction: 0.5, HotPort: 4}},
		{"hot port < 0", Config{Kind: KindHotspot, N: 4, Load: 0.5, HotFraction: 0.5, HotPort: -1}},
		{"pareto shape <= 1", Config{Kind: KindParetoOnOff, N: 4, Load: 0.5, ParetoAlpha: 1.0}},
		{"incast fan-in >= N", Config{Kind: KindIncast, N: 4, Load: 0.5, Fanin: 4}},
		{"alltoall one port", Config{Kind: KindAllToAll, N: 1, Load: 0.5}},
		{"ring one port", Config{Kind: KindRingAllReduce, N: 1, Load: 0.5}},
		{"tree one port", Config{Kind: KindTreeAllReduce, N: 1, Load: 0.5}},
		{"trace without Trace", Config{Kind: KindTrace, N: 4}},
	}
	for _, tc := range cases {
		if _, err := Build(tc.cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// buildableKinds returns a valid Config for every generated (non-trace)
// workload kind at the given size and load.
func buildableKinds(n int, load float64) []Config {
	return []Config{
		{Kind: KindUniform, N: n, Load: load, Seed: 1},
		{Kind: KindBursty, N: n, Load: load, Seed: 1},
		{Kind: KindHotspot, N: n, Load: load, HotPort: 0, HotFraction: 0.5, Seed: 1},
		{Kind: KindPermutation, N: n, Load: load, Seed: 1},
		{Kind: KindDiagonal, N: n, Load: load, Seed: 1},
		{Kind: KindBimodal, N: n, Load: load, Seed: 1},
		{Kind: KindIncast, N: n, Load: load, Seed: 1},
		{Kind: KindMMPP, N: n, Load: load, Seed: 1},
		{Kind: KindParetoOnOff, N: n, Load: load, Seed: 1},
		{Kind: KindAllToAll, N: n, Load: load, Seed: 1},
		{Kind: KindRingAllReduce, N: n, Load: load, Seed: 1},
		{Kind: KindTreeAllReduce, N: n, Load: load, Seed: 1},
	}
}

func TestBuildAllKinds(t *testing.T) {
	for _, cfg := range buildableKinds(8, 0.5) {
		gens, err := Build(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Kind, err)
		}
		if len(gens) != 8 {
			t.Fatalf("%v: %d generators", cfg.Kind, len(gens))
		}
		// Every generator must produce valid, non-self destinations.
		for src, g := range gens {
			for s := 0; s < 2000; s++ {
				if a, ok := g.Next(uint64(s)); ok {
					if a.Dst < 0 || a.Dst >= 8 {
						t.Fatalf("%v: src %d emitted dst %d", cfg.Kind, src, a.Dst)
					}
					// Diagonal deliberately targets output src (a
					// crossbar stress pattern); every other kind obeys
					// the no-self-traffic contract.
					if a.Dst == src && cfg.Kind != KindDiagonal {
						t.Fatalf("%v: src %d emitted self-traffic at slot %d", cfg.Kind, src, s)
					}
				}
			}
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range KindNames() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.String() != name {
			t.Errorf("%s parsed to %v", name, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind name accepted")
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := Config{Kind: KindBursty, N: 4, Load: 0.7, Seed: 42}
	g1, _ := Build(cfg)
	g2, _ := Build(cfg)
	for s := 0; s < 5000; s++ {
		for i := range g1 {
			a1, ok1 := g1[i].Next(uint64(s))
			a2, ok2 := g2[i].Next(uint64(s))
			if ok1 != ok2 || a1 != a2 {
				t.Fatalf("same seed diverged at slot %d port %d", s, i)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindUniform.String() != "uniform" || KindBimodal.String() != "bimodal" {
		t.Error("kind names wrong")
	}
}
