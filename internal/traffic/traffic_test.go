package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func measureLoad(t *testing.T, g Generator, slots int) float64 {
	t.Helper()
	n := 0
	for s := 0; s < slots; s++ {
		if _, ok := g.Next(uint64(s)); ok {
			n++
		}
	}
	return float64(n) / float64(slots)
}

func TestBernoulliLoad(t *testing.T) {
	for _, load := range []float64{0.1, 0.5, 0.9} {
		g := NewBernoulli(0, 64, load, sim.NewRNG(1))
		got := measureLoad(t, g, 200000)
		if math.Abs(got-load) > 0.01 {
			t.Errorf("load %v: measured %v", load, got)
		}
	}
}

func TestUniformExcludesSelf(t *testing.T) {
	u := Uniform{N: 16}
	rng := sim.NewRNG(2)
	counts := make([]int, 16)
	for i := 0; i < 60000; i++ {
		d := u.Pick(7, 0, rng)
		if d == 7 {
			t.Fatal("uniform pattern picked self")
		}
		counts[d]++
	}
	want := 60000.0 / 15
	for d, c := range counts {
		if d == 7 {
			continue
		}
		if math.Abs(float64(c)-want)/want > 0.08 {
			t.Errorf("destination %d: %d draws, want ~%.0f", d, c, want)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	h := Hotspot{N: 32, Hot: 3, Fraction: 0.5}
	rng := sim.NewRNG(3)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if h.Pick(9, 0, rng) == 3 {
			hot++
		}
	}
	// 50% direct plus uniform residue hitting the hot port ~1/31.
	want := 0.5 + 0.5/31
	if got := float64(hot) / draws; math.Abs(got-want) > 0.01 {
		t.Errorf("hot fraction %v want ~%v", got, want)
	}
}

func TestShiftPermutation(t *testing.T) {
	p := NewShiftPermutation(8, 3)
	for i := 0; i < 8; i++ {
		if got := p.Pick(i, 0, nil); got != (i+3)%8 {
			t.Errorf("shift perm: src %d -> %d", i, got)
		}
	}
}

func TestRandomPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%31) + 2
		p := NewRandomPermutation(n, sim.NewRNG(seed))
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			d := p.Partner[i]
			if d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomPermutationAvoidsFixedPoints(t *testing.T) {
	p := NewRandomPermutation(16, sim.NewRNG(5))
	for i, v := range p.Partner {
		if i == v {
			t.Errorf("fixed point at %d", i)
		}
	}
}

func TestDiagonalDistribution(t *testing.T) {
	d := Diagonal{N: 8}
	rng := sim.NewRNG(7)
	self, next := 0, 0
	const draws = 90000
	for i := 0; i < draws; i++ {
		switch d.Pick(2, 0, rng) {
		case 2:
			self++
		case 3:
			next++
		default:
			t.Fatal("diagonal picked an invalid destination")
		}
	}
	if got := float64(self) / draws; math.Abs(got-2.0/3) > 0.01 {
		t.Errorf("diagonal 2/3 share: %v", got)
	}
	if got := float64(next) / draws; math.Abs(got-1.0/3) > 0.01 {
		t.Errorf("diagonal 1/3 share: %v", got)
	}
}

func TestOnOffLoadAndBurstiness(t *testing.T) {
	g := NewOnOff(0, 64, 0.5, 16, sim.NewRNG(11))
	const slots = 400000
	arrivals := 0
	runs, runLen := 0, 0
	lastDst, inRun := -1, false
	for s := 0; s < slots; s++ {
		a, ok := g.Next(uint64(s))
		if ok {
			arrivals++
			if !inRun || a.Dst != lastDst {
				runs++
				inRun = true
				lastDst = a.Dst
			}
			runLen++
		} else {
			inRun = false
		}
	}
	load := float64(arrivals) / slots
	if math.Abs(load-0.5) > 0.03 {
		t.Errorf("on/off long-run load %v want 0.5", load)
	}
	meanRun := float64(runLen) / float64(runs)
	if meanRun < 8 {
		t.Errorf("mean burst run %v, want >> 1 for bursty traffic", meanRun)
	}
}

func TestBimodalClasses(t *testing.T) {
	b := NewBimodal(0, 64, 0.6, 0.05, sim.NewRNG(13))
	ctl, data := 0, 0
	const slots = 200000
	for s := 0; s < slots; s++ {
		if a, ok := b.Next(uint64(s)); ok {
			if a.Class == ClassControl {
				ctl++
			} else {
				data++
			}
		}
	}
	if got := float64(ctl) / slots; math.Abs(got-0.05) > 0.005 {
		t.Errorf("control load %v want 0.05", got)
	}
	if got := float64(data) / slots; math.Abs(got-0.6*0.95) > 0.02 {
		t.Errorf("data load %v", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Kind: KindUniform, N: 0, Load: 0.5}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := Build(Config{Kind: KindUniform, N: 4, Load: 1.5}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Build(Config{Kind: Kind(99), N: 4, Load: 0.5}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBuildAllKinds(t *testing.T) {
	for _, k := range []Kind{KindUniform, KindBursty, KindHotspot, KindPermutation, KindDiagonal, KindBimodal} {
		gens, err := Build(Config{Kind: k, N: 8, Load: 0.5, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(gens) != 8 {
			t.Fatalf("%v: %d generators", k, len(gens))
		}
		// Every generator must produce valid destinations.
		for src, g := range gens {
			for s := 0; s < 1000; s++ {
				if a, ok := g.Next(uint64(s)); ok {
					if a.Dst < 0 || a.Dst >= 8 {
						t.Fatalf("%v: src %d emitted dst %d", k, src, a.Dst)
					}
				}
			}
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := Config{Kind: KindBursty, N: 4, Load: 0.7, Seed: 42}
	g1, _ := Build(cfg)
	g2, _ := Build(cfg)
	for s := 0; s < 5000; s++ {
		for i := range g1 {
			a1, ok1 := g1[i].Next(uint64(s))
			a2, ok2 := g2[i].Next(uint64(s))
			if ok1 != ok2 || a1 != a2 {
				t.Fatalf("same seed diverged at slot %d port %d", s, i)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindUniform.String() != "uniform" || KindBimodal.String() != "bimodal" {
		t.Error("kind names wrong")
	}
}
