// Fan-in storms and synthetic collective phase schedules: the traffic
// an AI training cluster presents to the fabric. The collectives are
// slotted destination sequences — the mapping slot -> (active?, dst) is
// a pure deterministic function of the schedule; randomness (where any)
// only thins emissions to hit the configured load.

package traffic

import (
	"math"
	"math/bits"

	"repro/internal/sim"
)

// Incast is the fan-in storm: in each epoch a rotating victim port is
// bombarded by the Fanin ports cyclically following it, each offering
// Bernoulli(Load) toward the victim, while every other port idles. The
// victim rotates deterministically (epoch e targets port e mod N), so a
// run covering N epochs storms every port once. Load is the offered
// load per *storm* port while it is storming; the long-run per-port
// average is Load*Fanin/N.
type Incast struct {
	N          int
	Fanin      int    // storm senders per epoch, in [1, N-1]
	EpochSlots uint64 // epoch length in slots
	Load       float64
	Src        int
	RNG        *sim.RNG
}

// NewIncast builds a fan-in storm source for one port.
func NewIncast(src, n, fanin int, epochSlots uint64, load float64, rng *sim.RNG) *Incast {
	return &Incast{N: n, Fanin: fanin, EpochSlots: epochSlots, Load: load, Src: src, RNG: rng}
}

// Victim reports the storm target of the epoch containing slot.
func (g *Incast) Victim(slot uint64) int {
	return int((slot / g.EpochSlots) % uint64(g.N))
}

// Next implements Generator.
func (g *Incast) Next(slot uint64) (Arrival, bool) {
	victim := g.Victim(slot)
	d := g.Src - victim
	if d < 0 {
		d += g.N
	}
	// Storm senders are the Fanin ports cyclically following the victim;
	// d == 0 is the victim itself, which never self-targets.
	if d == 0 || d > g.Fanin {
		return Arrival{}, false
	}
	if !g.RNG.Bernoulli(g.Load) {
		return Arrival{}, false
	}
	return Arrival{Dst: victim}, true
}

// AllToAll is the classic phased all-to-all exchange: time is divided
// into N-1 phases of PhaseSlots slots, and in phase p every port i
// targets (i + 1 + p) mod N — a perfect permutation per phase, rotating
// through every possible partner. Emissions are Bernoulli(Load) toward
// the phase's fixed destination.
type AllToAll struct {
	N          int
	PhaseSlots uint64
	Load       float64
	Src        int
	RNG        *sim.RNG
}

// NewAllToAll builds a phased all-to-all source for one port.
func NewAllToAll(src, n int, phaseSlots uint64, load float64, rng *sim.RNG) *AllToAll {
	return &AllToAll{N: n, PhaseSlots: phaseSlots, Load: load, Src: src, RNG: rng}
}

// DstAt reports the deterministic destination of the phase containing
// slot.
func (g *AllToAll) DstAt(slot uint64) int {
	phase := int((slot / g.PhaseSlots) % uint64(g.N-1))
	return (g.Src + 1 + phase) % g.N
}

// Next implements Generator.
func (g *AllToAll) Next(slot uint64) (Arrival, bool) {
	if !g.RNG.Bernoulli(g.Load) {
		return Arrival{}, false
	}
	return Arrival{Dst: g.DstAt(slot)}, true
}

// RingAllReduce models the bandwidth-optimal ring all-reduce: every
// port streams chunks to its ring successor (src+1 mod N) at full rate
// for ChunkSlots slots, then idles for GapSlots slots while the
// (synchronous) step barrier completes. The generator is fully
// deterministic — no RNG — and all ports burst in lockstep, which is
// exactly the synchronized on/off cadence a data-parallel training step
// presents. Realized load is ChunkSlots/(ChunkSlots+GapSlots).
type RingAllReduce struct {
	N          int
	ChunkSlots uint64
	GapSlots   uint64
	Src        int
}

// NewRingAllReduce builds a ring all-reduce source for one port: chunk
// length chunkSlots, gap derived from the target load (load <= 0 yields
// a silent source).
func NewRingAllReduce(src, n int, chunkSlots uint64, load float64) *RingAllReduce {
	g := &RingAllReduce{N: n, ChunkSlots: chunkSlots, Src: src}
	switch {
	case load <= 0:
		g.ChunkSlots = 0 // never active
	case load < 1:
		g.GapSlots = uint64(math.Round(float64(chunkSlots) * (1 - load) / load))
	}
	return g
}

// Next implements Generator.
func (g *RingAllReduce) Next(slot uint64) (Arrival, bool) {
	if g.ChunkSlots == 0 {
		return Arrival{}, false
	}
	if pos := slot % (g.ChunkSlots + g.GapSlots); pos >= g.ChunkSlots {
		return Arrival{}, false
	}
	return Arrival{Dst: (g.Src + 1) % g.N}, true
}

// treeLevel reports the level of node i in the implicit binary tree
// rooted at port 0 (root is level 0; children of i are 2i+1 and 2i+2).
func treeLevel(i int) int {
	return bits.Len(uint(i)+1) - 1
}

// TreeAllReduce models a binary-tree all-reduce: a reduce sweep where
// each tree level sends partial sums to its parents (deepest level
// first), then a broadcast sweep where parents push the result back
// down (root first). Each of the 2*depth steps lasts PhaseSlots slots;
// a port emits Bernoulli(Load) toward its parent (reduce) or alternates
// between its children by slot parity (broadcast) while its level is
// active, and idles otherwise. The root is the hotspot of the reduce
// sweep's final step — the hierarchical fan-in collectives are known
// for.
type TreeAllReduce struct {
	N          int
	PhaseSlots uint64
	Load       float64
	Src        int
	RNG        *sim.RNG

	level int
	depth int // deepest level in the tree (>= 1 for N >= 2)
}

// NewTreeAllReduce builds a binary-tree all-reduce source for one port.
func NewTreeAllReduce(src, n int, phaseSlots uint64, load float64, rng *sim.RNG) *TreeAllReduce {
	return &TreeAllReduce{
		N: n, PhaseSlots: phaseSlots, Load: load, Src: src, RNG: rng,
		level: treeLevel(src),
		depth: treeLevel(n - 1),
	}
}

// DstAt reports the destination for slot, and whether this port is
// active in the step containing it.
func (g *TreeAllReduce) DstAt(slot uint64) (int, bool) {
	step := int((slot / g.PhaseSlots) % uint64(2*g.depth))
	if step < g.depth {
		// Reduce sweep: step s activates level depth-s, sending up.
		if g.level != g.depth-step || g.Src == 0 {
			return 0, false
		}
		return (g.Src - 1) / 2, true
	}
	// Broadcast sweep: step depth+s activates level s, sending down,
	// alternating children by slot parity (or the only existing child).
	if g.level != step-g.depth {
		return 0, false
	}
	left, right := 2*g.Src+1, 2*g.Src+2
	if left >= g.N {
		return 0, false // leaf in the broadcast sweep: nothing below
	}
	if right >= g.N || slot%2 == 0 {
		return left, true
	}
	return right, true
}

// Next implements Generator.
func (g *TreeAllReduce) Next(slot uint64) (Arrival, bool) {
	dst, active := g.DstAt(slot)
	if !active || !g.RNG.Bernoulli(g.Load) {
		return Arrival{}, false
	}
	return Arrival{Dst: dst}, true
}
