package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// replayArrivals runs a generator set for slots slots and flattens every
// arrival into a comparable event list.
func replayArrivals(gens []Generator, slots uint64) []TraceEvent {
	var out []TraceEvent
	for s := uint64(0); s < slots; s++ {
		for p, g := range gens {
			if a, ok := g.Next(s); ok {
				out = append(out, TraceEvent{Slot: s, Port: p, Dst: a.Dst, Class: a.Class})
			}
		}
	}
	return out
}

// TestTraceRoundTrip proves the record/replay loop byte-identical: a
// recorded workload serializes, parses back, replays the exact same
// arrival sequence, and re-serializes to the same bytes.
func TestTraceRoundTrip(t *testing.T) {
	const slots = 4000
	for _, cfg := range buildableKinds(8, 0.6) {
		cfg := cfg
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			tr, err := RecordTrace(cfg, slots)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Write(&buf); err != nil {
				t.Fatal(err)
			}
			first := buf.String()

			parsed, err := ReadTrace(strings.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			if parsed.N != tr.N || parsed.Slots != tr.Slots || len(parsed.Events) != len(tr.Events) {
				t.Fatalf("header drift: %d/%d/%d vs %d/%d/%d",
					parsed.N, parsed.Slots, len(parsed.Events), tr.N, tr.Slots, len(tr.Events))
			}

			// Replay through the player must reproduce the generator's
			// arrivals bit-exactly.
			replayed := replayArrivals(parsed.Generators(), slots)
			if len(replayed) != len(tr.Events) {
				t.Fatalf("replay produced %d events, recorded %d", len(replayed), len(tr.Events))
			}
			for i := range replayed {
				if replayed[i] != tr.Events[i] {
					t.Fatalf("event %d: replayed %+v recorded %+v", i, replayed[i], tr.Events[i])
				}
			}

			// And a rewrite of the parsed trace is byte-identical.
			var buf2 bytes.Buffer
			if err := parsed.Write(&buf2); err != nil {
				t.Fatal(err)
			}
			if buf2.String() != first {
				t.Fatal("serialize -> parse -> serialize is not byte-identical")
			}
		})
	}
}

// TestTraceBuildKind checks the KindTrace path through Build and that a
// second replay pass (fresh Generators call) matches the first.
func TestTraceBuildKind(t *testing.T) {
	tr, err := RecordTrace(Config{Kind: KindBursty, N: 4, Load: 0.7, Seed: 5}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Build(Config{Kind: KindTrace, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(Config{Kind: KindTrace, N: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	a1 := replayArrivals(g1, 2000)
	a2 := replayArrivals(g2, 2000)
	if len(a1) != len(a2) || len(a1) != len(tr.Events) {
		t.Fatalf("replay lengths %d/%d, recorded %d", len(a1), len(a2), len(tr.Events))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("replay passes diverged at event %d", i)
		}
	}
	if _, err := Build(Config{Kind: KindTrace, N: 8, Trace: tr}); err == nil {
		t.Error("port-count mismatch accepted")
	}
}

// TestTracePlayerSkipsSlots: a harness sampling only every other slot
// must see exactly the arrivals of the slots it asked about.
func TestTracePlayerSkipsSlots(t *testing.T) {
	tr := &Trace{N: 1, Slots: 10, Events: []TraceEvent{
		{Slot: 1, Port: 0, Dst: 0, Class: ClassData},
		{Slot: 2, Port: 0, Dst: 0, Class: ClassControl},
		{Slot: 4, Port: 0, Dst: 0, Class: ClassData},
	}}
	g := tr.Generators()[0]
	for _, step := range []struct {
		slot uint64
		want bool
	}{{0, false}, {2, true}, {3, false}, {4, true}, {9, false}} {
		if _, ok := g.Next(step.slot); ok != step.want {
			t.Errorf("slot %d: arrival %v want %v", step.slot, ok, step.want)
		}
	}
}

// TestReadTraceRejections covers the validator: each corruption must be
// refused with an error.
func TestReadTraceRejections(t *testing.T) {
	tr, err := RecordTrace(Config{Kind: KindUniform, N: 4, Load: 0.5, Seed: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")

	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"bad magic", strings.Replace(good, traceMagic, "not-a-trace", 1)},
		{"future version", strings.Replace(good, " v1 ", " v2 ", 1)},
		{"missing header field", strings.Replace(good, " events=", " count=", 1)},
		{"zero ports", strings.Replace(good, " n=4 ", " n=0 ", 1)},
		{"event count mismatch", strings.Replace(good, "events=", "events=1", 1)},
		{"short line", good + "3 1\n"},
		{"non-numeric field", good + "3 1 x 0\n"},
		{"class out of range", lines[0] + "\n99 0 1 7\n"},
		{"slot beyond header", lines[0] + "\n200 0 1 0\n"},
		{"dst out of range", lines[0] + "\n0 0 9 0\n"},
		{"unsorted events", lines[0] + "\n5 0 1 0\n4 0 1 0\n"},
		{"duplicate slot-port", lines[0] + "\n5 0 1 0\n5 0 2 0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}

	// Sanity: the uncorrupted text still parses.
	if _, err := ReadTrace(strings.NewReader(good)); err != nil {
		t.Errorf("pristine trace rejected: %v", err)
	}
}
