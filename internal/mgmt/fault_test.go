package mgmt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/fault"
)

// checkByName fetches one check from a battery.
func checkByName(t *testing.T, checks []Check, name string) Check {
	t.Helper()
	for _, c := range checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("self-test battery has no %q check", name)
	return Check{}
}

// TestBISTDetectsInjectedFaults closes the §VI.A loop end to end: a
// fault campaign compiled by internal/fault and wired through
// core.AttachFaults must be flagged by the self-test battery — a
// stuck-off gate by the selectivity walk, a lost receiver by the
// receiver-health check — and the battery must go green again once the
// faults clear.
func TestBISTDetectsInjectedFaults(t *testing.T) {
	cfg := core.DemonstratorConfig()
	cfg.Ports = 16
	spec, err := fault.ParseSpec("rx:3@100+500,soaoff:7@100+500")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = spec
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swCfg, err := sys.SwitchConfig()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := crossbar.New(swCfg)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := sys.CompileFaults()
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(schedule)
	sys.AttachFaults(sw, inj)
	mgr := New(sys)
	mgr.AttachSwitch(sw)

	// Before the faults land, the full battery passes.
	for _, c := range mgr.SelfTest(1) {
		if c.Status != OK {
			t.Fatalf("pre-fault check %s failed: %s", c.Name, c.Detail)
		}
	}

	// Land both faults (due at slot 100) and re-run the BIST.
	inj.Tick(100)
	checks := mgr.SelfTest(1)
	if AllOK(checks) {
		t.Fatal("BIST green with a lost receiver and a stuck-off gate injected")
	}
	rx := checkByName(t, checks, "receiver-health")
	if rx.Status != Failed || !strings.Contains(rx.Detail, "egress 3") {
		t.Errorf("receiver-health = %s (%s), want failure naming egress 3", rx.Status, rx.Detail)
	}
	gate := checkByName(t, checks, "soa-gate-selectivity")
	if gate.Status != Failed || !strings.Contains(gate.Detail, "stuck-off") {
		t.Errorf("soa-gate-selectivity = %s (%s), want a stuck-off diagnosis", gate.Status, gate.Detail)
	}

	// After both faults clear (slot 600), the battery is green again.
	inj.Tick(600)
	for _, c := range mgr.SelfTest(1) {
		if c.Status != OK {
			t.Errorf("post-clear check %s still failing: %s", c.Name, c.Detail)
		}
	}
	if inj.Skipped != 0 {
		t.Errorf("injector skipped %d transitions; system wiring incomplete", inj.Skipped)
	}
}

// TestReceiverCheckOnlyWithAttachedSwitch: the receiver-health check
// appears exactly when a live switch is attached.
func TestReceiverCheckOnlyWithAttachedSwitch(t *testing.T) {
	m := testManager(t)
	if len(m.SelfTest(1)) != 5 {
		t.Fatalf("detached battery has %d checks, want 5", len(m.SelfTest(1)))
	}
	sw, err := crossbar.New(crossbar.Config{N: 16})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachSwitch(sw)
	checks := m.SelfTest(1)
	if len(checks) != 6 {
		t.Fatalf("attached battery has %d checks, want 6", len(checks))
	}
	if c := checkByName(t, checks, "receiver-health"); c.Status != OK {
		t.Errorf("healthy switch failed receiver-health: %s", c.Detail)
	}
}
