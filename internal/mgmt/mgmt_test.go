package mgmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func testManager(t *testing.T) *Manager {
	t.Helper()
	cfg := core.DemonstratorConfig()
	cfg.Ports = 16
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(sys)
}

func TestInventory(t *testing.T) {
	m := testManager(t)
	inv := m.Inventory()
	if inv.Ports != 16 || inv.Receivers != 2 {
		t.Errorf("inventory %+v", inv)
	}
	if inv.SwitchingModules != 32 {
		t.Errorf("modules %d, want ports*receivers", inv.SwitchingModules)
	}
	if inv.WorstMarginDB <= 0 {
		t.Errorf("margin %v", inv.WorstMarginDB)
	}
	if inv.CellBytes != 256 || inv.CycleTime != "51.2ns" {
		t.Errorf("format %+v", inv)
	}
	if inv.Scheduler != "flppr" {
		t.Errorf("scheduler %q", inv.Scheduler)
	}
}

func TestSelfTestAllPass(t *testing.T) {
	m := testManager(t)
	checks := m.SelfTest(1)
	if len(checks) != 5 {
		t.Fatalf("%d checks", len(checks))
	}
	if !AllOK(checks) {
		for _, c := range checks {
			if c.Status != OK {
				t.Errorf("check %s failed: %s", c.Name, c.Detail)
			}
		}
	}
	names := map[string]bool{}
	for _, c := range checks {
		names[c.Name] = true
	}
	for _, want := range []string{"optical-power-budget", "soa-gate-selectivity", "arbiter-sanity", "fec-loopback", "timing-budget"} {
		if !names[want] {
			t.Errorf("missing self-test %s", want)
		}
	}
}

func TestSelfTestDetectsBrokenBudget(t *testing.T) {
	cfg := core.DemonstratorConfig()
	cfg.Ports = 16
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the guard budget: a format with a hopeless guard.
	badCfg := sys.Config()
	_ = badCfg
	// The timing check reads the format from the system config; build a
	// fresh system with a too-tight guard via the packet format.
	cfg2 := core.DemonstratorConfig()
	cfg2.Ports = 16
	cfg2.Format.GuardTime = 0
	sys2, err := core.NewSystem(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	checks := New(sys2).SelfTest(1)
	if AllOK(checks) {
		t.Error("zero-guard format passed the timing self-test")
	}
}

func TestCaptureSnapshot(t *testing.T) {
	m := testManager(t)
	s, err := m.Capture(0.5, 200, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if s.Delivered == 0 || s.ThroughputPerPort < 0.4 {
		t.Errorf("snapshot %+v", s)
	}
	if s.OrderViolations != 0 || s.Drops != 0 {
		t.Errorf("integrity: %+v", s)
	}
	if s.MeanLatencyNs <= 0 || s.P99LatencyNs < s.MeanLatencyNs {
		t.Errorf("latencies: mean %v p99 %v", s.MeanLatencyNs, s.P99LatencyNs)
	}
}

func TestFullReportJSON(t *testing.T) {
	m := testManager(t)
	rep, err := m.FullReport(1, []float64{0.2, 0.8}, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Snapshots) != 2 {
		t.Fatalf("%d snapshots", len(rep.Snapshots))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"inventory"`, `"self_test"`, `"snapshots"`, `"throughput_per_port"`, `"worst_optical_margin_db"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	// Round-trip.
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Inventory.Ports != 16 || len(back.SelfTest) != 5 {
		t.Errorf("round trip lost data: %+v", back.Inventory)
	}
	// Higher load must not lower throughput below the lighter run.
	if rep.Snapshots[1].ThroughputPerPort < rep.Snapshots[0].ThroughputPerPort {
		t.Errorf("throughput not increasing with load: %v vs %v",
			rep.Snapshots[0].ThroughputPerPort, rep.Snapshots[1].ThroughputPerPort)
	}
}
