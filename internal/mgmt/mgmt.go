// Package mgmt is the management system of §VI.A — "configuring and
// testing the system, monitoring demonstrator operation, and extracting
// performance values" — re-imagined as a library plus JSON export
// instead of the original GUI. It supervises a core.System: hardware
// inventory, built-in self-tests over every subsystem (optical budget,
// gate selectivity, arbiter sanity, FEC loopback, timing budget), and
// performance-snapshot extraction from simulation runs.
package mgmt

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/fec"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/units"
)

// Status classifies a self-test outcome.
type Status string

// Self-test statuses.
const (
	OK     Status = "ok"
	Failed Status = "failed"
)

// Check is one self-test result.
type Check struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	Detail string `json:"detail"`
}

// Inventory describes the managed hardware.
type Inventory struct {
	Ports            int     `json:"ports"`
	Receivers        int     `json:"receivers_per_port"`
	SwitchingModules int     `json:"switching_modules"`
	SOACount         int     `json:"soa_count"`
	BroadcastFibers  int     `json:"broadcast_fibers"`
	WDMColors        int     `json:"wdm_colors"`
	LineRate         string  `json:"line_rate"`
	CellBytes        int     `json:"cell_bytes"`
	CycleTime        string  `json:"cycle_time"`
	Scheduler        string  `json:"scheduler"`
	WorstMarginDB    float64 `json:"worst_optical_margin_db"`
}

// Manager supervises one OSMOSIS system.
type Manager struct {
	sys *core.System
	sw  *crossbar.Switch
}

// New wraps a built system.
func New(sys *core.System) *Manager { return &Manager{sys: sys} }

// AttachSwitch points the self-tests at a live switch instance so the
// BIST can observe runtime damage (failed receivers) that a freshly
// built switch would not show. Pass nil to detach.
func (m *Manager) AttachSwitch(sw *crossbar.Switch) { m.sw = sw }

// Inventory reports the managed configuration.
func (m *Manager) Inventory() Inventory {
	cfg := m.sys.Config()
	return Inventory{
		Ports:            cfg.Ports,
		Receivers:        cfg.Receivers,
		SwitchingModules: m.sys.Crossbar.Modules(),
		SOACount:         m.sys.Crossbar.SOACount(),
		BroadcastFibers:  cfg.Optics.Fibers(),
		WDMColors:        cfg.Optics.Colors,
		LineRate:         cfg.Format.LineRate.String(),
		CellBytes:        cfg.Format.CellBytes,
		CycleTime:        cfg.Format.CycleTime().String(),
		Scheduler:        string(cfg.Scheduler),
		WorstMarginDB:    float64(m.sys.WorstMargin),
	}
}

// SelfTest runs the built-in test battery and returns one Check per
// subsystem. All checks are non-destructive and deterministic for a
// given seed.
func (m *Manager) SelfTest(seed uint64) []Check {
	var checks []Check
	add := func(name string, err error, okDetail string) {
		c := Check{Name: name, Status: OK, Detail: okDetail}
		if err != nil {
			c.Status = Failed
			c.Detail = err.Error()
		}
		checks = append(checks, c)
	}

	// 1. Optical power budget across every path.
	worst, err := m.sys.Crossbar.VerifyAllPaths()
	add("optical-power-budget", err, fmt.Sprintf("worst margin %.2f dB", float64(worst)))

	// 2. Gate selectivity walk: every module commanded across every
	// broadcast fiber; the observed path must match the command and a
	// fully dark module must not leak.
	add("soa-gate-selectivity", m.gateWalk(seed), "all modules select exactly the commanded inputs")

	// 2b. Receiver health on the attached live switch, when present.
	if m.sw != nil {
		add("receiver-health", m.receiverCheck(), "all egress receivers in service")
	}

	// 3. Arbiter sanity: random demand, matching validity, conservation.
	add("arbiter-sanity", m.arbiterTest(seed), "matchings valid over random demand")

	// 4. FEC loopback: encode, corrupt one bit, decode, compare.
	add("fec-loopback", m.fecLoopback(seed), "single-bit corruption corrected end to end")

	// 5. Timing budget: guard decomposition fits the cell format.
	add("timing-budget", m.timingTest(), "SOA + CDR + jitter within guard")
	return checks
}

// AllOK reports whether every check passed.
func AllOK(checks []Check) bool {
	for _, c := range checks {
		if c.Status != OK {
			return false
		}
	}
	return true
}

// gateWalk is the §VI.A BIST loop over the switching modules: every
// module is commanded across every broadcast fiber (color sampled per
// trial) and the effective optical path is compared with the command.
// A stuck-off gate shows as a dark commanded path; a stuck-on gate
// shows as a leak once the module is commanded dark. Exhaustive over
// modules and fibers, so any single wedged fiber gate is caught.
func (m *Manager) gateWalk(seed uint64) error {
	rng := sim.NewRNG(seed)
	cfg := m.sys.Config()
	xb := m.sys.Crossbar
	colors := cfg.Optics.Colors
	for mod := 0; mod < xb.Modules(); mod++ {
		for f := 0; f < cfg.Optics.Fibers(); f++ {
			in := f*colors + rng.Intn(colors)
			if _, err := xb.Configure(mod, in); err != nil {
				return fmt.Errorf("module %d: %w", mod, err)
			}
			if got := xb.EffectiveInput(mod); got != in {
				if got < 0 {
					return fmt.Errorf("module %d commanded input %d but the path is dark (stuck-off gate)", mod, in)
				}
				return fmt.Errorf("module %d passes input %d, commanded %d", mod, got, in)
			}
		}
		if _, err := xb.Configure(mod, -1); err != nil {
			return err
		}
		if xb.ModuleLeaks(mod) {
			return fmt.Errorf("module %d leaks light with all gates commanded off (stuck-on gate)", mod)
		}
	}
	return nil
}

// receiverCheck verifies the attached switch still has its full
// receiver complement at every egress.
func (m *Manager) receiverCheck() error {
	cfg := m.sys.Config()
	if down := m.sw.ReceiversDown(); down > 0 {
		for e := 0; e < cfg.Ports; e++ {
			if up := m.sw.ReceiversUp(e); up < cfg.Receivers {
				return fmt.Errorf("%d of %d receivers out of service (first degraded egress %d: %d/%d up)",
					down, cfg.Ports*cfg.Receivers, e, up, cfg.Receivers)
			}
		}
	}
	return nil
}

// arbiterTest drives the configured scheduler against random demand.
func (m *Manager) arbiterTest(seed uint64) error {
	cfg := m.sys.Config()
	s, err := m.sys.NewScheduler()
	if err != nil {
		return err
	}
	if s == nil { // ideal-OQ reference has no arbiter
		return nil
	}
	b := newTestBoard(cfg.Ports, cfg.Receivers, seed)
	for slot := uint64(0); slot < 64; slot++ {
		b.arrive()
		match := s.Tick(slot, b)
		if err := match.Validate(cfg.Ports, cfg.Receivers); err != nil {
			return err
		}
		for in, out := range match.Out {
			if out < 0 {
				continue
			}
			if b.demand[in][out] <= 0 {
				return fmt.Errorf("grant for empty VOQ (%d,%d) at slot %d", in, out, slot)
			}
			b.take(in, out)
		}
	}
	return nil
}

// fecLoopback round-trips a block through the codec with one bit flip.
func (m *Manager) fecLoopback(seed uint64) error {
	rng := sim.NewRNG(seed)
	data := make([]byte, fec.DataSymbols)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	block, err := fec.Encode(data)
	if err != nil {
		return err
	}
	bit := rng.Intn(fec.BlockBits)
	block[bit/8] ^= 1 << (bit % 8)
	out, status, err := fec.Decode(block)
	if err != nil {
		return err
	}
	if status != fec.Corrected {
		return fmt.Errorf("loopback status %v, want corrected", status)
	}
	for i := range data {
		if out[i] != data[i] {
			return fmt.Errorf("loopback data mismatch at byte %d", i)
		}
	}
	return nil
}

// timingTest checks the §IV.C guard decomposition for the format.
func (m *Manager) timingTest() error {
	cdr := timing.DemonstratorCDR()
	tree := timing.DemonstratorClockTree()
	budget := timing.GuardBudget{
		SOASwitching:   5 * units.Nanosecond,
		CDRAcquisition: cdr.AcquisitionTime(),
		ArrivalJitter:  tree.AlignmentWindow(),
	}
	guard := m.sys.Config().Format.GuardTime
	if !budget.Fits(guard) {
		return fmt.Errorf("guard budget %v exceeds format guard %v", budget.Total(), guard)
	}
	return nil
}

// testBoard is a self-contained scheduler test fixture.
type testBoard struct {
	n, r      int
	demand    [][]int
	committed [][]int
	rng       *sim.RNG
}

func newTestBoard(n, r int, seed uint64) *testBoard {
	b := &testBoard{n: n, r: r, rng: sim.NewRNG(seed)}
	b.demand = make([][]int, n)
	b.committed = make([][]int, n)
	for i := range b.demand {
		b.demand[i] = make([]int, n)
		b.committed[i] = make([]int, n)
	}
	return b
}

func (b *testBoard) arrive() {
	for in := 0; in < b.n; in++ {
		if b.rng.Bernoulli(0.5) {
			b.demand[in][b.rng.Intn(b.n)]++
		}
	}
}

func (b *testBoard) take(in, out int) {
	b.demand[in][out]--
	if b.committed[in][out] > 0 {
		b.committed[in][out]--
	}
}

func (b *testBoard) N() int              { return b.n }
func (b *testBoard) Receivers() int      { return b.r }
func (b *testBoard) ReceiversAt(int) int { return b.r }

func (b *testBoard) Demand(in, out int) int {
	d := b.demand[in][out] - b.committed[in][out]
	if d < 0 {
		return 0
	}
	return d
}

func (b *testBoard) Commit(in, out int) { b.committed[in][out]++ }

func (b *testBoard) Uncommit(in, out int) {
	if b.committed[in][out] > 0 {
		b.committed[in][out]--
	}
}

var _ sched.Board = (*testBoard)(nil)

// Snapshot is the "extracted performance values" export.
type Snapshot struct {
	Load               float64 `json:"offered_load"`
	Offered            uint64  `json:"offered_cells"`
	Delivered          uint64  `json:"delivered_cells"`
	ThroughputPerPort  float64 `json:"throughput_per_port"`
	MeanLatencyNs      float64 `json:"mean_latency_ns"`
	P99LatencyNs       float64 `json:"p99_latency_ns"`
	GrantLatencyCycles float64 `json:"grant_latency_cycles"`
	MaxVOQDepth        int     `json:"max_voq_depth"`
	OrderViolations    uint64  `json:"order_violations"`
	Drops              uint64  `json:"drops"`
}

// Capture runs the system at a load and extracts a snapshot.
func (m *Manager) Capture(load float64, warmup, measure uint64) (Snapshot, error) {
	mm, err := m.sys.RunUniform(load, warmup, measure)
	if err != nil {
		return Snapshot{}, err
	}
	return snapshotOf(load, m.sys.Config().Ports, mm), nil
}

func snapshotOf(load float64, ports int, m *crossbar.Metrics) Snapshot {
	return Snapshot{
		Load:               load,
		Offered:            m.Offered,
		Delivered:          m.Delivered,
		ThroughputPerPort:  m.ThroughputPerPort(ports),
		MeanLatencyNs:      m.Latency.Mean().Nanoseconds(),
		P99LatencyNs:       m.Latency.P99().Nanoseconds(),
		GrantLatencyCycles: m.GrantLatency.Mean(),
		MaxVOQDepth:        m.MaxVOQDepth,
		OrderViolations:    m.OrderViolations,
		Drops:              m.Dropped,
	}
}

// Report bundles everything the management console shows.
type Report struct {
	Inventory Inventory  `json:"inventory"`
	SelfTest  []Check    `json:"self_test"`
	Snapshots []Snapshot `json:"snapshots"`
}

// WriteJSON exports a report.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FullReport runs the complete console cycle: inventory, self-test, and
// snapshots at the given loads.
func (m *Manager) FullReport(seed uint64, loads []float64, warmup, measure uint64) (Report, error) {
	rep := Report{
		Inventory: m.Inventory(),
		SelfTest:  m.SelfTest(seed),
	}
	for _, load := range loads {
		s, err := m.Capture(load, warmup, measure)
		if err != nil {
			return rep, err
		}
		rep.Snapshots = append(rep.Snapshots, s)
	}
	return rep, nil
}
