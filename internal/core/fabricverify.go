package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/units"
)

// Fabric-level Table-1 verification: the single-switch Verify covers the
// switch element; VerifyFabric scores a full multistage simulation —
// port count from the actual topology, end-to-end latency against the
// 500 ns fabric budget, losslessness under flow control, and in-order
// delivery across stages.

// VerifyFabric evaluates a measured multistage run against Table 1.
// sat must come from a near-saturation run and light from a light-load
// run of an identically configured fabric.
func VerifyFabric(req Requirements, net fabric.Net, sat, light *fabric.Metrics, budget FabricLatencyBudget) Report {
	var r Report
	add := func(name, required, measured string, pass bool) {
		r.Checks = append(r.Checks, Check{Name: name, Required: required, Measured: measured, Pass: pass})
	}

	add("fabric port count",
		fmt.Sprintf(">= %d", req.MinFabricPorts),
		fmt.Sprintf("%d hosts, %d stages", net.HostCount(), net.StageCount()),
		net.HostCount() >= req.MinFabricPorts)

	lightLat := units.Time(float64(light.LatencySlots.Mean()) * float64(light.CycleTime))
	add("fabric latency",
		fmt.Sprintf("<= %v incl. cables", budget.Total),
		lightLat.String(),
		lightLat <= budget.Total)

	thr := sat.ThroughputPerHost(net.HostCount())
	add("sustained throughput",
		fmt.Sprintf("> %.0f%%", req.SustainedThroughput*100),
		fmt.Sprintf("%.1f%%", thr*100),
		thr > req.SustainedThroughput)

	add("packet loss",
		"transmission errors only",
		fmt.Sprintf("%d buffer drops", sat.Dropped+light.Dropped),
		!req.LossOnlyFromTransmission || sat.Dropped+light.Dropped == 0)

	add("packet ordering",
		"maintained per in/out pair",
		fmt.Sprintf("%d violations", sat.OrderViolations+light.OrderViolations),
		!req.OrderingRequired || sat.OrderViolations+light.OrderViolations == 0)

	return r
}

// BuildAndVerifyFabric runs the full recipe: build the fabric at the
// given scale, run near saturation and at light load, and score it.
// Large configurations are slow; tests use scaled-down instances with a
// relaxed MinFabricPorts.
func BuildAndVerifyFabric(req Requirements, cfg fabric.Config, satLoad, lightLoad float64, warmup, measure uint64, seedOffset uint64) (Report, error) {
	run := func(load float64) (*fabric.Metrics, fabric.Net, error) {
		f, err := fabric.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		gens, err := buildUniform(f.Network().HostCount(), load, 1+seedOffset)
		if err != nil {
			return nil, nil, err
		}
		m, err := f.Run(gens, warmup, measure)
		if err != nil {
			return nil, nil, err
		}
		return m, f.Network(), nil
	}
	sat, net, err := run(satLoad)
	if err != nil {
		return Report{}, err
	}
	light, _, err := run(lightLoad)
	if err != nil {
		return Report{}, err
	}
	return VerifyFabric(req, net, sat, light, PaperBudget()), nil
}
