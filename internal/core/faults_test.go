package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/traffic"
)

// faultedConfig is a small system the degradation tests share.
func faultedConfig(spec string, t *testing.T) Config {
	t.Helper()
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	cfg.Receivers = 2
	cfg.Seed = 7
	if spec != "" {
		fs, err := fault.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fs
	}
	return cfg
}

func runDegradation(t *testing.T, cfg Config, load float64, warmup, measure uint64) *DegradationResult {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunDegradation(traffic.Config{Kind: traffic.KindUniform, Load: load}, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDegradationHealthySingleEpoch(t *testing.T) {
	res := runDegradation(t, faultedConfig("", t), 0.8, 500, 2000)
	if len(res.Epochs) != 1 {
		t.Fatalf("healthy run produced %d epochs, want 1", len(res.Epochs))
	}
	e := res.Epochs[0]
	if e.FromSlot != 500 || e.ToSlot != 2500 {
		t.Errorf("epoch spans [%d,%d), want [500,2500)", e.FromSlot, e.ToSlot)
	}
	if e.Offered != res.Metrics.Offered || e.Delivered != res.Metrics.Delivered {
		t.Errorf("single epoch (%d/%d) disagrees with window metrics (%d/%d)",
			e.Offered, e.Delivered, res.Metrics.Offered, res.Metrics.Delivered)
	}
	if res.Applied != 0 || res.Skipped != 0 || res.ReceiversDown != 0 {
		t.Errorf("healthy run reported fault activity: applied=%d skipped=%d down=%d",
			res.Applied, res.Skipped, res.ReceiversDown)
	}
}

func TestRunDegradationSegmentsAndDegrades(t *testing.T) {
	// Two permanent receiver losses and a stall inside the window: the
	// losses and the stall begin at three distinct slots and the stall
	// ends at a fourth, so the window splits into 5 epochs. The traffic
	// streams are untouched by the campaign, so offered load matches the
	// healthy run exactly.
	cfg := faultedConfig("rx:3@1000,rx:5@1400,stall:120@1800", t)
	res := runDegradation(t, cfg, 0.9, 500, 2000)
	healthy := runDegradation(t, faultedConfig("", t), 0.9, 500, 2000)

	if len(res.Epochs) != 5 {
		t.Fatalf("4 in-window transitions produced %d epochs, want 5", len(res.Epochs))
	}
	wantBounds := []uint64{500, 1000, 1400, 1800, 1920, 2500}
	for i, e := range res.Epochs {
		if e.FromSlot != wantBounds[i] || e.ToSlot != wantBounds[i+1] {
			t.Errorf("epoch %d spans [%d,%d), want [%d,%d)", i, e.FromSlot, e.ToSlot, wantBounds[i], wantBounds[i+1])
		}
	}
	if res.Applied != 3 || res.Skipped != 0 {
		t.Errorf("applied=%d skipped=%d, want 3/0", res.Applied, res.Skipped)
	}
	if res.ReceiversDown != 2 {
		t.Errorf("receivers down %d, want 2", res.ReceiversDown)
	}
	if res.Stalls != 120 {
		t.Errorf("stalled slots %d, want 120", res.Stalls)
	}
	if res.Metrics.Offered != healthy.Metrics.Offered {
		t.Errorf("fault campaign perturbed traffic: offered %d vs healthy %d",
			res.Metrics.Offered, healthy.Metrics.Offered)
	}
	if res.Metrics.Dropped != 0 || res.Metrics.OrderViolations != 0 {
		t.Errorf("degraded run lost cells: dropped=%d ooo=%d", res.Metrics.Dropped, res.Metrics.OrderViolations)
	}
	// Degradation is graceful, not free: the faulted window delivers no
	// more than the healthy one and ends with a deeper backlog.
	if res.Metrics.Delivered > healthy.Metrics.Delivered {
		t.Errorf("faulted run delivered more (%d) than healthy (%d)", res.Metrics.Delivered, healthy.Metrics.Delivered)
	}
	if res.Epochs[0].ReceiversDown != 0 || res.Epochs[4].ReceiversDown != 2 {
		t.Errorf("epoch damage counters: first=%d last=%d, want 0 and 2",
			res.Epochs[0].ReceiversDown, res.Epochs[4].ReceiversDown)
	}
}

func TestRunDegradationDeterministic(t *testing.T) {
	spec := "rx:1@900,soaoff:2@1200+600,stall:80@1500,rand:3@600-2200+400"
	a := runDegradation(t, faultedConfig(spec, t), 0.85, 400, 2000)
	b := runDegradation(t, faultedConfig(spec, t), 0.85, 400, 2000)
	if !reflect.DeepEqual(a.Schedule.Events(), b.Schedule.Events()) {
		t.Fatal("compiled schedules differ between identical runs")
	}
	if !reflect.DeepEqual(a.Epochs, b.Epochs) {
		t.Fatal("degradation epochs differ between identical runs")
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatal("metrics differ between identical runs")
	}
	// A different base seed must move the random component.
	cfg := faultedConfig(spec, t)
	cfg.Seed = 8
	c := runDegradation(t, cfg, 0.85, 400, 2000)
	if reflect.DeepEqual(a.Schedule.Events(), c.Schedule.Events()) {
		t.Error("random fault component ignored the seed")
	}
}

func TestRunDegradationGateFaultsReachOptics(t *testing.T) {
	// A stuck-off gate mid-window must be visible on the system's optical
	// fabric (the BIST's view) when the run ends.
	// 16 ports at 8 colors -> 2 broadcast fibers, so gate indices are 0-1.
	res := runDegradation(t, faultedConfig("soaoff:4@1000,soaon:6.0.1@1200", t), 0.5, 500, 1500)
	if res.GateFaults != 2 {
		t.Errorf("optical fabric reports %d gate faults, want 2", res.GateFaults)
	}
	if res.Applied != 2 {
		t.Errorf("applied %d transitions, want 2", res.Applied)
	}
}
