package core

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/units"
)

// Scaling envelope of §VII: the OSMOSIS architecture scales through the
// product of WDM wavelengths, fibers (space multiplexing), and per-port
// rate, with the FLPPR scheduler absorbing the extra iterations that
// higher port counts require.

// ScalePoint is one feasible single-stage configuration.
type ScalePoint struct {
	// Colors and Fibers multiply to the port count.
	Colors, Fibers int
	// PortRate is the per-port line rate.
	PortRate units.Bandwidth
	// Ports = Colors * Fibers.
	Ports int
	// Aggregate is the stage's total bandwidth.
	Aggregate units.Bandwidth
	// SchedulerIterations is log2(Ports), the iteration budget FLPPR
	// must fit into one packet cycle via parallelism.
	SchedulerIterations int
	// CellTime is the packet cycle at this rate for 256 B cells.
	CellTime units.Time
}

// NewScalePoint validates and derives a configuration.
func NewScalePoint(colors, fibers int, rate units.Bandwidth) (ScalePoint, error) {
	if colors <= 0 || fibers <= 0 {
		return ScalePoint{}, fmt.Errorf("core: colors %d and fibers %d must be positive", colors, fibers)
	}
	if rate <= 0 {
		return ScalePoint{}, fmt.Errorf("core: rate must be positive")
	}
	ports := colors * fibers
	return ScalePoint{
		Colors:              colors,
		Fibers:              fibers,
		PortRate:            rate,
		Ports:               ports,
		Aggregate:           units.Bandwidth(float64(rate) * float64(ports)),
		SchedulerIterations: sched.Log2Ceil(ports),
		CellTime:            units.TransmissionTime(256, rate),
	}, nil
}

// DemonstratorScale is the built system: 8 colors x 8 fibers x 40 Gb/s.
func DemonstratorScale() ScalePoint {
	p, _ := NewScalePoint(8, 8, 40*units.GigabitPerSecond)
	return p
}

// OutlookScale is the §VII claim: 256 ports at 200 Gb/s in one stage,
// beyond 50 Tb/s aggregate.
func OutlookScale() ScalePoint {
	p, _ := NewScalePoint(16, 16, 200*units.GigabitPerSecond)
	return p
}

// ElectronicLimit is the paper's single-stage electronic ceiling
// (§VII): 6-8 Tb/s aggregate given pin counts and CMOS speeds.
const ElectronicLimit units.Bandwidth = 8 * units.TerabitPerSecond

// ExceedsElectronicLimit reports whether a scale point is beyond what a
// single-stage electronic switch could offer.
func (p ScalePoint) ExceedsElectronicLimit() bool {
	return p.Aggregate > ElectronicLimit
}

// FLPPRSpeedupNeeded reports how many sub-schedulers FLPPR needs so all
// required iterations complete within one cell time, given that one
// iteration takes one cell time of the demonstrator (51.2 ns) scaled by
// an ASIC speedup factor.
func (p ScalePoint) FLPPRSpeedupNeeded(asicSpeedup float64) int {
	if asicSpeedup < 1 {
		asicSpeedup = 1
	}
	demoIter := DemonstratorScale().CellTime // one iteration per 51.2 ns in FPGA
	iterTime := units.Time(float64(demoIter) / asicSpeedup)
	if p.CellTime <= 0 {
		return p.SchedulerIterations
	}
	// Sub-schedulers work in parallel, one matching completing per cell
	// cycle: need K >= iterations * iterTime / cellTime.
	k := int64((units.Time(p.SchedulerIterations)*iterTime + p.CellTime - units.Picosecond) / p.CellTime)
	if k < 1 {
		k = 1
	}
	return int(k)
}
