package core

import (
	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/optics"
	"repro/internal/traffic"
)

// FaultDims reports the fault target space of this system: the switch
// dimensions plus the optical fiber count (SOA gate indices) and one
// addressable link per port (BER bursts, credit loss).
func (s *System) FaultDims() fault.Dims {
	return fault.Dims{
		Ports:     s.cfg.Ports,
		Receivers: s.cfg.Receivers,
		Fibers:    s.cfg.Optics.Fibers(),
		Links:     s.cfg.Ports,
	}
}

// CompileFaults compiles the configured fault campaign against the
// system's dimensions, expanding any random component on the fault
// stream derived from the system seed.
func (s *System) CompileFaults() (fault.Schedule, error) {
	return fault.Compile(s.cfg.Faults, s.FaultDims(), s.cfg.Seed)
}

// AttachFaults wires one injector to the cell engine (receiver loss,
// scheduler stalls) and the optical fabric (SOA gate faults on the
// switching module serving the targeted egress receiver). Gate faults
// change what the §VI.A self-tests observe — path health, selectivity,
// leak detection — while the cell engine models their service impact
// through the receiver-loss channel; link BER and credit faults live at
// the link layer and are exercised there.
func (s *System) AttachFaults(sw *crossbar.Switch, inj *fault.Injector) {
	sw.AttachFaults(inj)
	inj.OnGate(func(e fault.Event, mode fault.GateMode) {
		m := s.Crossbar.ModuleOf(e.Egress, e.Receiver)
		// Targets were validated at Compile time against FaultDims.
		//lint:ignore errcheck validated at schedule compile time; see fault.Dims
		_ = s.Crossbar.SetGateFault(m, e.Gate, optics.StuckMode(mode))
	})
}

// DegradationResult reports one faulted measurement: the compiled
// campaign, the per-epoch segmentation of the measurement window at
// every in-window fault transition, and the whole-window metrics.
type DegradationResult struct {
	// Schedule is the compiled campaign the run replayed.
	Schedule fault.Schedule
	// Epochs segments the measurement window at fault transitions; a
	// campaign with K in-window transitions yields K+1 epochs.
	Epochs []crossbar.Epoch
	// Metrics is the whole-window aggregate (same collector as a healthy
	// RunWorkload).
	Metrics *crossbar.Metrics
	// Applied and Skipped count injector transitions delivered to hooks
	// vs. dropped for want of one (link-layer kinds in a switch-only run).
	Applied, Skipped int
	// Stalls is the number of slots the arbiter spent frozen.
	Stalls uint64
	// ReceiversDown and GateFaults report the damage still in effect when
	// the run ended.
	ReceiversDown int
	GateFaults    int
}

// RunDegradation simulates the switch under the configured fault
// campaign, cutting a metrics epoch at every fault transition inside
// the measurement window. With a zero campaign it degenerates to
// RunWorkload plus a single epoch spanning the window; with one, the
// traffic processes are untouched (faults draw from their own derived
// stream), so healthy and faulted runs see identical arrivals.
func (s *System) RunDegradation(t traffic.Config, warmup, measure uint64) (*DegradationResult, error) {
	schedule, err := s.CompileFaults()
	if err != nil {
		return nil, err
	}
	cfg, err := s.SwitchConfig()
	if err != nil {
		return nil, err
	}
	sw, err := crossbar.New(cfg)
	if err != nil {
		return nil, err
	}
	inj := fault.NewInjector(schedule)
	s.AttachFaults(sw, inj)
	t.N = s.cfg.Ports
	if t.Seed == 0 {
		t.Seed = s.cfg.Seed
	}
	gens, err := traffic.Build(t)
	if err != nil {
		return nil, err
	}
	cuts := schedule.Boundaries(warmup+1, warmup+measure)
	m, epochs, err := sw.RunEpochs(gens, warmup, measure, cuts)
	if err != nil {
		return nil, err
	}
	return &DegradationResult{
		Schedule:      schedule,
		Epochs:        epochs,
		Metrics:       m,
		Applied:       inj.Applied,
		Skipped:       inj.Skipped,
		Stalls:        sw.Stalls,
		ReceiversDown: sw.ReceiversDown(),
		GateFaults:    s.Crossbar.GateFaults(),
	}, nil
}
