// Package core assembles the OSMOSIS hybrid opto-electronic interconnect
// system from its substrates: the broadcast-and-select optical crossbar
// (internal/optics), electronic VOQ adapters and central FLPPR arbiter
// (internal/crossbar, internal/sched), the FEC and retransmission layers
// (internal/fec, internal/link), and multistage fat-tree composition
// (internal/fabric). It also encodes the paper's analytic models: the
// Table-1 requirement checklist, the Fig.-1 single-stage latency bound
// that forces multistage topologies, and the §VII scaling envelope.
package core

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/fault"
	"repro/internal/optics"
	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/traffic"
	"repro/internal/units"
)

// SchedulerKind selects the crossbar arbitration algorithm.
type SchedulerKind string

// Scheduler kinds.
const (
	SchedFLPPR     SchedulerKind = "flppr"
	SchedISLIP     SchedulerKind = "islip"
	SchedPipelined SchedulerKind = "pipelined-islip"
	SchedPIM       SchedulerKind = "pim"
	SchedLQF       SchedulerKind = "lqf"
	SchedIdealOQ   SchedulerKind = "ideal-oq"
)

// Config describes one OSMOSIS single-stage switch system.
type Config struct {
	// Ports is the switch port count (demonstrator: 64).
	Ports int
	// Receivers is 1 or 2 (dual-receiver broadcast-and-select).
	Receivers int
	// Scheduler picks the arbiter; SubSchedulers sets FLPPR's K or the
	// iteration/pipeline depth of the others (0 = log2 Ports).
	Scheduler     SchedulerKind
	SubSchedulers int
	// Format is the cell format (zero value = 256 B / 40 Gb/s OSMOSIS).
	Format packet.Format
	// Optics parameterizes the photonic path (zero value = demonstrator).
	Optics optics.Params
	// ControlRTTCycles models adapter-to-scheduler distance.
	ControlRTTCycles int
	// Seed drives all stochastic inputs.
	Seed uint64
	// Faults is the fault campaign RunDegradation injects; the zero value
	// runs healthy. Random components draw from the fault stream derived
	// from Seed, so a faulted run never perturbs the traffic processes.
	Faults fault.Spec
}

// DemonstratorConfig returns the §V hardware configuration: 64 ports at
// 40 Gb/s, 256-byte cells on a 51.2 ns cycle, dual receivers, FLPPR.
func DemonstratorConfig() Config {
	return Config{
		Ports:     64,
		Receivers: 2,
		Scheduler: SchedFLPPR,
		Format:    packet.OSMOSISFormat(),
		Optics:    optics.DemonstratorParams(),
		Seed:      1,
	}
}

// System is a buildable, runnable OSMOSIS switch.
type System struct {
	cfg Config
	// Crossbar is the optical data path (gates, budgets).
	Crossbar *optics.Crossbar
	// WorstMargin is the tightest optical power margin across all paths.
	WorstMargin units.DB
}

// NewSystem validates the configuration, builds the optical crossbar,
// and closes its power budget (a system whose budget does not close is
// rejected, mirroring §VI.A).
func NewSystem(cfg Config) (*System, error) {
	if cfg.Ports <= 0 {
		cfg.Ports = 64
	}
	if cfg.Receivers <= 0 {
		cfg.Receivers = 2
	}
	if cfg.Format.CellBytes == 0 {
		cfg.Format = packet.OSMOSISFormat()
	}
	if cfg.Optics.Ports == 0 {
		cfg.Optics = optics.DemonstratorParams()
	}
	// The optical fabric must mirror the switch dimensions; callers
	// often override Ports/Receivers after taking DemonstratorConfig.
	if cfg.Optics.Ports != cfg.Ports || cfg.Optics.ReceiversPerPort != cfg.Receivers {
		cfg.Optics.Ports = cfg.Ports
		cfg.Optics.ReceiversPerPort = cfg.Receivers
		for cfg.Optics.Colors > 1 && cfg.Ports%cfg.Optics.Colors != 0 {
			cfg.Optics.Colors /= 2
		}
		if cfg.Ports < cfg.Optics.Colors {
			cfg.Optics.Colors = cfg.Ports
		}
	}
	xb, err := optics.NewCrossbar(cfg.Optics)
	if err != nil {
		return nil, err
	}
	margin, err := xb.VerifyAllPaths()
	if err != nil {
		return nil, fmt.Errorf("core: optical power budget: %w", err)
	}
	return &System{cfg: cfg, Crossbar: xb, WorstMargin: margin}, nil
}

// Config reports the (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// NewScheduler builds a fresh arbiter per the configuration.
func (s *System) NewScheduler() (sched.Scheduler, error) {
	return BuildScheduler(s.cfg.Scheduler, s.cfg.Ports, s.cfg.SubSchedulers, s.cfg.Seed)
}

// BuildScheduler constructs an arbiter by kind.
func BuildScheduler(kind SchedulerKind, ports, param int, seed uint64) (sched.Scheduler, error) {
	switch kind {
	case SchedFLPPR, "":
		return sched.NewFLPPR(ports, param), nil
	case SchedISLIP:
		return sched.NewISLIP(ports, param), nil
	case SchedPipelined:
		return sched.NewPipelinedISLIP(ports, param), nil
	case SchedPIM:
		return sched.NewPIM(ports, param, seed), nil
	case SchedLQF:
		return sched.NewLQF(ports), nil
	case SchedIdealOQ:
		return nil, nil // crossbar.Config.IdealOQ handles this
	default:
		return nil, fmt.Errorf("core: unknown scheduler kind %q", kind)
	}
}

// SwitchConfig derives the crossbar-engine configuration.
func (s *System) SwitchConfig() (crossbar.Config, error) {
	sc, err := s.NewScheduler()
	if err != nil {
		return crossbar.Config{}, err
	}
	return crossbar.Config{
		N:                s.cfg.Ports,
		Receivers:        s.cfg.Receivers,
		Scheduler:        sc,
		Format:           s.cfg.Format,
		IdealOQ:          s.cfg.Scheduler == SchedIdealOQ,
		ControlRTTCycles: s.cfg.ControlRTTCycles,
	}, nil
}

// RunWorkload simulates the switch under a named workload.
func (s *System) RunWorkload(t traffic.Config, warmup, measure uint64) (*crossbar.Metrics, error) {
	cfg, err := s.SwitchConfig()
	if err != nil {
		return nil, err
	}
	sw, err := crossbar.New(cfg)
	if err != nil {
		return nil, err
	}
	t.N = s.cfg.Ports
	if t.Seed == 0 {
		t.Seed = s.cfg.Seed
	}
	gens, err := traffic.Build(t)
	if err != nil {
		return nil, err
	}
	return sw.Run(gens, warmup, measure)
}

// RunUniform simulates uniform Bernoulli traffic at the given load.
func (s *System) RunUniform(load float64, warmup, measure uint64) (*crossbar.Metrics, error) {
	return s.RunWorkload(traffic.Config{Kind: traffic.KindUniform, Load: load}, warmup, measure)
}

// buildUniform is a small helper for fabric verification runs.
func buildUniform(hosts int, load float64, seed uint64) ([]traffic.Generator, error) {
	return traffic.Build(traffic.Config{Kind: traffic.KindUniform, N: hosts, Load: load, Seed: seed})
}
