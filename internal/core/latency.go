package core

import (
	"repro/internal/packet"
	"repro/internal/units"
)

// Latency models of §III/§IV: the Fig.-1 argument that a single-stage
// centrally scheduled fabric pays two machine-room round trips, versus
// the multistage store-and-forward alternative whose per-stage penalty
// is tiny at small cell sizes.

// SingleStageLatencyBreakdown decomposes the Fig.-1 latency.
type SingleStageLatencyBreakdown struct {
	// RTT is one machine-room round trip (host to central switch and
	// back, 2 x half-RTT).
	RTT units.Time
	// RequestGrant is the control round trip (1 RTT) plus scheduling.
	RequestGrant units.Time
	// DataFlight is the data transfer (1 more RTT: host to switch to
	// destination host).
	DataFlight units.Time
	// Scheduling is the arbiter decision time.
	Scheduling units.Time
	// Switching is the crossbar traversal/transmission time.
	Switching units.Time
	// Total is the minimum unloaded latency.
	Total units.Time
}

// SingleStageCentralLatency computes the minimum latency of a
// single-stage bufferless crossbar with a central scheduler in a
// machine room of the given diameter: "one RTT is required to perform
// the request/grant cycle, one more RTT to transmit the data packet".
func SingleStageCentralLatency(diameterMeters float64, scheduling, cellTime units.Time) SingleStageLatencyBreakdown {
	rtt := units.RoundTrip(diameterMeters / 2) // hosts average half the diameter from the center
	b := SingleStageLatencyBreakdown{
		RTT:          rtt,
		RequestGrant: rtt + scheduling,
		DataFlight:   rtt + cellTime,
		Scheduling:   scheduling,
		Switching:    cellTime,
	}
	b.Total = b.RequestGrant + b.DataFlight
	return b
}

// MultistageLatency computes the unloaded latency of an s-stage
// store-and-forward fabric: each stage contributes its switch delay plus
// a cell store, and the cables contribute one end-to-end time of flight
// (cells stream through; no control round trip across the room).
func MultistageLatency(stages int, perStageDelay, cellTime units.Time, diameterMeters float64) units.Time {
	if stages < 1 {
		stages = 1
	}
	flight := units.FiberDelay(diameterMeters)
	return units.Time(stages)*(perStageDelay+cellTime) + flight
}

// StoreAndForwardPenalty reports the per-stage buffering cost of a
// packet: its own transmission time (§IV: 5.33 ns for 64 B at
// 12 GByte/s), negligible against the 250 ns cable budget.
func StoreAndForwardPenalty(packetBytes int, rate units.Bandwidth) units.Time {
	return units.TransmissionTime(packetBytes, rate)
}

// FabricLatencyBudget is the paper's engineering split of the 500 ns
// fabric budget: half to switches, half to cables (250 ns covers a 50 m
// room at 5 ns/m).
type FabricLatencyBudget struct {
	Total, Switches, Cables units.Time
	RoomDiameterMeters      float64
}

// PaperBudget returns the §III numbers.
func PaperBudget() FabricLatencyBudget {
	return FabricLatencyBudget{
		Total:              500 * units.Nanosecond,
		Switches:           250 * units.Nanosecond,
		Cables:             250 * units.Nanosecond,
		RoomDiameterMeters: 50,
	}
}

// PerStageBudget reports the switch-latency allowance per stage for a
// given stage count.
func (b FabricLatencyBudget) PerStageBudget(stages int) units.Time {
	if stages < 1 {
		stages = 1
	}
	return b.Switches / units.Time(stages)
}

// ASICTargetFormat is the commercialization target the requirements
// address (§VII): IB 12x QDR rates (12 GByte/s), shorter guard time from
// DPSK-saturated SOAs and ASIC burst-mode receivers.
func ASICTargetFormat() packet.Format {
	return packet.Format{
		CellBytes:   256,
		HeaderBytes: 8,
		GuardTime:   2 * units.Nanosecond,
		LineRate:    units.IB12xQDRPortRate,
		FECOverhead: 16.0 / 256.0,
	}
}
