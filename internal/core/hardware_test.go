package core

import "testing"

// TestRunWithOpticsIntegration couples the arbiter to the SOA gate
// fabric: every grant must be realized by the photonic path within the
// guard budget, with zero mis-selected paths.
func TestRunWithOpticsIntegration(t *testing.T) {
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, rep, err := s.RunWithOptics(0.7, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if rep.PathErrors != 0 {
		t.Errorf("optical path errors: %d", rep.PathErrors)
	}
	if !rep.GuardOK {
		t.Errorf("SOA settling %v exceeds the %v guard budget", rep.MaxGuard, rep.GuardBudget)
	}
	if rep.SwitchEvents == 0 {
		t.Error("no SOA reconfigurations recorded")
	}
	// At 0.7 load most slots reconfigure something; the rate must be
	// positive and bounded by modules-per-slot.
	maxRate := float64(cfg.Ports * 2)
	if rep.ReconfigsPerSlot <= 0 || rep.ReconfigsPerSlot > maxRate {
		t.Errorf("reconfigs per slot %.2f out of (0, %.0f]", rep.ReconfigsPerSlot, maxRate)
	}
	if rep.Slots == 0 {
		t.Error("OnMatch hook never fired")
	}
}

// TestRunWithOpticsRejectsIdealOQ: the reference switch has no photonics.
func TestRunWithOpticsRejectsIdealOQ(t *testing.T) {
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	cfg.Scheduler = SchedIdealOQ
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunWithOptics(0.5, 10, 10); err == nil {
		t.Error("ideal OQ accepted for an optics-coupled run")
	}
}

// TestOpticsIdleSwitchGoesDark: at zero load the gates settle dark and
// reconfiguration stops.
func TestOpticsIdleSwitchGoesDark(t *testing.T) {
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := s.RunWithOptics(0, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwitchEvents != 0 {
		t.Errorf("idle switch reconfigured %d times", rep.SwitchEvents)
	}
}
