package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/traffic"
	"repro/internal/units"
)

func TestDemonstratorSystemBuilds(t *testing.T) {
	s, err := NewSystem(DemonstratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.WorstMargin <= 0 {
		t.Errorf("optical margin %v", s.WorstMargin)
	}
	if s.Crossbar.Modules() != 128 {
		t.Errorf("modules %d", s.Crossbar.Modules())
	}
	if s.Config().Ports != 64 {
		t.Errorf("ports %d", s.Config().Ports)
	}
}

func TestBuildSchedulerKinds(t *testing.T) {
	for _, k := range []SchedulerKind{SchedFLPPR, SchedISLIP, SchedPipelined, SchedPIM, SchedLQF} {
		sc, err := BuildScheduler(k, 16, 0, 1)
		if err != nil || sc == nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	if sc, err := BuildScheduler(SchedIdealOQ, 16, 0, 1); err != nil || sc != nil {
		t.Errorf("ideal OQ should produce nil scheduler: %v %v", sc, err)
	}
	if _, err := BuildScheduler("nonsense", 16, 0, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunUniformSmoke(t *testing.T) {
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.RunUniform(0.5, 300, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 || m.OrderViolations != 0 {
		t.Errorf("delivered=%d violations=%d", m.Delivered, m.OrderViolations)
	}
}

func TestVerifyTable1(t *testing.T) {
	// The ASIC-target configuration must pass every Table-1 check.
	cfg := DemonstratorConfig()
	cfg.Ports = 32
	cfg.Format = ASICTargetFormat()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := s.RunUniform(0.99, 1500, 6000)
	if err != nil {
		t.Fatal(err)
	}
	light, err := s.RunUniform(0.05, 300, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Verify(Table1(), sat, light.Latency.Mean(), 2048)
	if !rep.Pass() {
		t.Errorf("Table 1 verification failed: %v\n%s", rep.Failed(), rep)
	}
	if !strings.Contains(rep.String(), "PASS") {
		t.Error("report rendering broken")
	}
}

func TestVerifyDemonstratorCompromises(t *testing.T) {
	// The FPGA demonstrator's 40 Gb/s ports fall short of the 12 GByte/s
	// requirement — the paper admits this compromise; Verify must
	// surface it rather than hide it.
	cfg := DemonstratorConfig()
	cfg.Ports = 32
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := s.RunUniform(0.99, 1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Verify(Table1(), sat, 150*units.Nanosecond, 2048)
	failed := rep.Failed()
	foundBW := false
	for _, f := range failed {
		if f == "port bandwidth" {
			foundBW = true
		} else {
			t.Errorf("unexpected failing check: %s", f)
		}
	}
	if !foundBW {
		t.Error("demonstrator port-bandwidth compromise not flagged")
	}
}

func TestSingleStageLatencyExceedsBudget(t *testing.T) {
	// The Fig.-1 argument: in a 50 m room, 2 RTT alone is 1000 ns,
	// blowing the 500 ns fabric budget — hence multistage.
	b := SingleStageCentralLatency(50, 100*units.Nanosecond, 51200*units.Picosecond)
	if b.RTT != 250*units.Nanosecond {
		t.Errorf("RTT %v, want 250ns for a 50m room (hosts at radius 25m)", b.RTT)
	}
	if b.Total <= PaperBudget().Total {
		t.Errorf("single-stage latency %v should exceed the %v budget", b.Total, PaperBudget().Total)
	}
}

func TestMultistageLatencyFitsBudget(t *testing.T) {
	// A 3-stage fabric with ~65 ns per stage plus one room crossing
	// stays within the 500 ns budget — the paper's architecture point.
	budget := PaperBudget()
	perStage := budget.PerStageBudget(3)
	got := MultistageLatency(3, perStage-51200*units.Picosecond, 51200*units.Picosecond, 50)
	if got > budget.Total {
		t.Errorf("multistage latency %v exceeds budget %v", got, budget.Total)
	}
	// And it must beat the single-stage alternative.
	single := SingleStageCentralLatency(50, 100*units.Nanosecond, 51200*units.Picosecond)
	if got >= single.Total {
		t.Errorf("multistage %v should beat single-stage %v", got, single.Total)
	}
}

func TestStoreAndForwardPenaltyTiny(t *testing.T) {
	// §IV: 64 B at 12 GByte/s stores in 5.33 ns, negligible vs 250 ns.
	p := StoreAndForwardPenalty(64, units.IB12xQDRPortRate)
	if math.Abs(p.Nanoseconds()-5.33) > 0.01 {
		t.Errorf("store-and-forward penalty %v, paper says 5.33 ns", p)
	}
	if float64(p) > 0.05*float64(250*units.Nanosecond) {
		t.Error("penalty should be negligible against the cable budget")
	}
}

func TestScalingEnvelope(t *testing.T) {
	demo := DemonstratorScale()
	if demo.Ports != 64 || demo.Aggregate.TbPerSecond() != 2.56 {
		t.Errorf("demonstrator scale %+v", demo)
	}
	if demo.SchedulerIterations != 6 {
		t.Errorf("demonstrator iterations %d", demo.SchedulerIterations)
	}
	out := OutlookScale()
	if out.Ports != 256 {
		t.Errorf("outlook ports %d", out.Ports)
	}
	// §VII: "can scale to at least 50 Tb/s aggregate per stage".
	if out.Aggregate.TbPerSecond() < 50 {
		t.Errorf("outlook aggregate %v below 50 Tb/s", out.Aggregate)
	}
	if !out.ExceedsElectronicLimit() {
		t.Error("outlook must exceed the 6-8 Tb/s electronic ceiling")
	}
	if demo.ExceedsElectronicLimit() {
		t.Error("the demonstrator (2.56 Tb/s) is within electronic reach; the claim is about scaling")
	}
}

func TestFLPPRSpeedupNeeded(t *testing.T) {
	out := OutlookScale()
	// §VII: an ASIC mapping speeds the scheduler up by at least 4x; the
	// FLPPR parallelism must then be achievable (bounded, positive).
	k := out.FLPPRSpeedupNeeded(4)
	if k < out.SchedulerIterations {
		t.Errorf("sub-scheduler count %d cannot be below the iteration need %d at a shorter cell time",
			k, out.SchedulerIterations)
	}
	if k > 64 {
		t.Errorf("sub-scheduler count %d implausibly high", k)
	}
	// More ASIC speedup means fewer sub-schedulers.
	if out.FLPPRSpeedupNeeded(8) > k {
		t.Error("speedup should reduce the required parallelism")
	}
}

func TestNewScalePointValidation(t *testing.T) {
	if _, err := NewScalePoint(0, 8, units.OSMOSISPortRate); err == nil {
		t.Error("zero colors accepted")
	}
	if _, err := NewScalePoint(8, 8, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestRunWorkloadKinds(t *testing.T) {
	cfg := DemonstratorConfig()
	cfg.Ports = 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []traffic.Kind{traffic.KindBursty, traffic.KindHotspot, traffic.KindBimodal} {
		// Hotspot no longer has a silent default fraction; configure one.
		m, err := s.RunWorkload(traffic.Config{Kind: k, Load: 0.4, HotFraction: 0.5}, 200, 1000)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.OrderViolations != 0 {
			t.Errorf("%v: order violations %d", k, m.OrderViolations)
		}
	}
}

func TestASICTargetFormat(t *testing.T) {
	f := ASICTargetFormat()
	if f.LineRate != units.IB12xQDRPortRate {
		t.Errorf("ASIC format rate %v", f.LineRate)
	}
	if eff := f.EffectiveUserBandwidthFraction(); eff < 0.75 {
		t.Errorf("ASIC format effective bandwidth %.3f must meet Table 1", eff)
	}
}
