package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sched"
)

// TestVerifyFabricSmall scores a scaled-down 3-stage fabric against
// Table 1 (with the port floor relaxed to the instance size): the
// architecture checks — losslessness, ordering, throughput, latency —
// must all pass.
func TestVerifyFabricSmall(t *testing.T) {
	req := Table1()
	req.MinFabricPorts = 32
	// Order-preserving per-flow spine hashing leaves a statistical load
	// imbalance that costs several percent of saturation throughput at
	// this tiny scale (4 spines x 496 flows); it washes out at the
	// 2048-port scale. Score the small instance accordingly.
	req.SustainedThroughput = 0.85
	cfg := fabric.Config{
		Hosts: 32, Radix: 8, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(8, 0) },
		LinkDelaySlots: 2,
	}
	rep, err := BuildAndVerifyFabric(req, cfg, 0.97, 0.05, 1000, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Errorf("fabric verification failed: %v\n%s", rep.Failed(), rep)
	}
}

// TestVerifyFabricFlagsSmallPortCount: an instance below the Table-1
// floor must fail exactly the port-count check.
func TestVerifyFabricFlagsSmallPortCount(t *testing.T) {
	req := Table1()
	req.SustainedThroughput = 0.85 // see TestVerifyFabricSmall
	cfg := fabric.Config{
		Hosts: 32, Radix: 8, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(8, 0) },
		LinkDelaySlots: 2,
	}
	rep, err := BuildAndVerifyFabric(req, cfg, 0.97, 0.05, 1000, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0] != "fabric port count" {
		t.Errorf("failing checks %v, want exactly the port-count floor", failed)
	}
}

// TestVerifyFabric2048 is the paper's flagship verification at full
// scale — slow, so gated behind -short.
func TestVerifyFabric2048(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-port fabric verification is slow")
	}
	cfg := fabric.Config{
		Hosts: 2048, Radix: 64, Receivers: 2,
		NewScheduler: func() sched.Scheduler { return sched.NewFLPPR(64, 0) },
		// The 250 ns cable half of the 500 ns budget covers the whole
		// room crossing; with two inter-switch hops that is ~2 cycles
		// (~100 ns) per hop.
		LinkDelaySlots: 2,
	}
	rep, err := BuildAndVerifyFabric(Table1(), cfg, 0.96, 0.05, 60, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The short measurement window undercounts sustained throughput;
	// check the structural requirements strictly and throughput loosely.
	for _, c := range rep.Checks {
		switch c.Name {
		case "fabric port count", "packet loss", "packet ordering", "fabric latency":
			if !c.Pass {
				t.Errorf("%s: required %s, measured %s", c.Name, c.Required, c.Measured)
			}
		}
	}
}
