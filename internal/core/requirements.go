package core

import (
	"fmt"
	"strings"

	"repro/internal/crossbar"
	"repro/internal/units"
)

// Requirements is Table 1 of the paper: the fundamental HPC fabric
// requirements the architecture must meet.
type Requirements struct {
	// SwitchLatencyMin/Max bound the per-switch latency budget.
	SwitchLatencyMin, SwitchLatencyMax units.Time
	// MinFabricPorts is the fabric-level port floor.
	MinFabricPorts int
	// PortBandwidth is the per-port requirement in each direction.
	PortBandwidth units.Bandwidth
	// SustainedThroughput is the saturation throughput floor.
	SustainedThroughput float64
	// MinPacketBytes is the smallest packet the fabric must carry well.
	MinPacketBytes int
	// EffectiveUserBandwidth is the payload fraction floor.
	EffectiveUserBandwidth float64
	// LossOnlyFromTransmission: buffer overflow loss is forbidden.
	LossOnlyFromTransmission bool
	// OrderingRequired: per input/output pair order must hold.
	OrderingRequired bool
}

// Table1 returns the paper's requirement values.
func Table1() Requirements {
	return Requirements{
		SwitchLatencyMin:         100 * units.Nanosecond,
		SwitchLatencyMax:         250 * units.Nanosecond,
		MinFabricPorts:           2048,
		PortBandwidth:            units.IB12xQDRPortRate,
		SustainedThroughput:      0.95,
		MinPacketBytes:           64,
		EffectiveUserBandwidth:   0.75,
		LossOnlyFromTransmission: true,
		OrderingRequired:         true,
	}
}

// Check is one requirement verdict.
type Check struct {
	Name     string
	Required string
	Measured string
	Pass     bool
}

// Report is a full Table-1 compliance report for a measured system.
type Report struct {
	Checks []Check
}

// Pass reports whether every check passed.
func (r Report) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failed lists the names of failing checks.
func (r Report) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the report as an aligned table.
func (r Report) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-28s required %-22s measured %-22s %s\n",
			c.Name, c.Required, c.Measured, status)
	}
	return b.String()
}

// Verify evaluates a single-stage run (at high offered load for the
// throughput checks, near-zero load latency passed separately) plus the
// fabric-level composition against Table 1.
//
// unloadedLatency should come from a light-load run (the latency
// requirement is a base-latency property); m from a saturation run.
func (s *System) Verify(req Requirements, m *crossbar.Metrics, unloadedLatency units.Time, fabricPorts int) Report {
	var r Report
	add := func(name, required, measured string, pass bool) {
		r.Checks = append(r.Checks, Check{Name: name, Required: required, Measured: measured, Pass: pass})
	}

	add("switch latency",
		fmt.Sprintf("%v - %v", req.SwitchLatencyMin, req.SwitchLatencyMax),
		unloadedLatency.String(),
		unloadedLatency <= req.SwitchLatencyMax)

	add("fabric port count",
		fmt.Sprintf(">= %d", req.MinFabricPorts),
		fmt.Sprintf("%d", fabricPorts),
		fabricPorts >= req.MinFabricPorts)

	// The demonstrator runs 40 Gb/s ports as an FPGA-era compromise;
	// the requirement targets the ASIC version. Report the format rate.
	add("port bandwidth",
		req.PortBandwidth.String(),
		s.cfg.Format.LineRate.String(),
		s.cfg.Format.LineRate >= req.PortBandwidth)

	thr := m.ThroughputPerPort(s.cfg.Ports)
	add("sustained throughput",
		fmt.Sprintf("> %.0f%%", req.SustainedThroughput*100),
		fmt.Sprintf("%.1f%%", thr*100),
		thr > req.SustainedThroughput)

	add("packet loss",
		"transmission errors only",
		fmt.Sprintf("%d buffer drops", m.Dropped),
		!req.LossOnlyFromTransmission || m.Dropped == 0)

	eff := s.cfg.Format.EffectiveUserBandwidthFraction()
	add("effective user bandwidth",
		fmt.Sprintf(">= %.0f%%", req.EffectiveUserBandwidth*100),
		fmt.Sprintf("%.1f%%", eff*100),
		eff >= req.EffectiveUserBandwidth)

	add("packet ordering",
		"maintained per in/out pair",
		fmt.Sprintf("%d violations", m.OrderViolations),
		!req.OrderingRequired || m.OrderViolations == 0)

	add("minimum packet size",
		fmt.Sprintf("%d-256 B cells", req.MinPacketBytes),
		fmt.Sprintf("%d B cells", s.cfg.Format.CellBytes),
		s.cfg.Format.CellBytes >= req.MinPacketBytes)

	return r
}
