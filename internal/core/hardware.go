package core

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/sched"
	"repro/internal/traffic"
	"repro/internal/units"
)

// Hardware-in-the-loop integration: the cycle-level switch engine drives
// the structural optical crossbar, reconfiguring one SOA fiber/color
// gate pair per granted receiver every packet cycle — exactly what the
// demonstrator's scheduler-to-SOA control links do (§V). It verifies
// that every granted path is optically selected and that the gate
// switching time fits inside the cell format's guard budget.

// OpticsReport summarizes an optics-coupled run.
type OpticsReport struct {
	// Slots simulated with the optical path in the loop.
	Slots uint64
	// SwitchEvents is the total SOA module reconfiguration count.
	SwitchEvents uint64
	// ReconfigsPerSlot is the average module reconfiguration rate.
	ReconfigsPerSlot float64
	// MaxGuard is the longest SOA settling time any cycle demanded.
	MaxGuard units.Time
	// GuardBudget is the format's per-cell guard allowance.
	GuardBudget units.Time
	// GuardOK reports MaxGuard <= GuardBudget: the optical switch can
	// keep up with per-cell reconfiguration.
	GuardOK bool
	// PathErrors counts grants whose module did not end up selecting
	// the granted input (must be zero).
	PathErrors uint64
}

// RunWithOptics runs uniform traffic with the optical crossbar coupled
// to the arbiter. Every executed matching reconfigures the egress's
// switching modules: granted inputs are assigned to the output's
// receiver modules in order; unused receiver modules go dark.
func (s *System) RunWithOptics(load float64, warmup, measure uint64) (*crossbar.Metrics, *OpticsReport, error) {
	swCfg, err := s.SwitchConfig()
	if err != nil {
		return nil, nil, err
	}
	if swCfg.IdealOQ {
		return nil, nil, fmt.Errorf("core: the ideal-OQ reference has no optical path")
	}
	rep := &OpticsReport{GuardBudget: s.cfg.Format.GuardTime}
	r := s.cfg.Receivers
	xb := s.Crossbar
	// perOut[out] collects the granted inputs for one output per slot.
	perOut := make([][]int, s.cfg.Ports)
	startEvents := xb.SwitchEvents()
	swCfg.OnMatch = func(slot uint64, m sched.Matching) {
		rep.Slots++
		for out := range perOut {
			perOut[out] = perOut[out][:0]
		}
		for in, out := range m.Out {
			if out >= 0 {
				perOut[out] = append(perOut[out], in)
			}
		}
		for out, ins := range perOut {
			for rx := 0; rx < r; rx++ {
				module := xb.ModuleOf(out, rx)
				want := -1
				if rx < len(ins) {
					want = ins[rx]
				}
				guard, err := xb.Configure(module, want)
				if err != nil {
					rep.PathErrors++
					continue
				}
				if guard > rep.MaxGuard {
					rep.MaxGuard = guard
				}
				if want >= 0 && xb.SelectedInput(module) != want {
					rep.PathErrors++
				}
			}
		}
	}
	sw, err := crossbar.New(swCfg)
	if err != nil {
		return nil, nil, err
	}
	gens, err := traffic.Build(traffic.Config{
		Kind: traffic.KindUniform, N: s.cfg.Ports, Load: load, Seed: s.cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	m, err := sw.Run(gens, warmup, measure)
	if err != nil {
		return nil, nil, err
	}
	rep.SwitchEvents = xb.SwitchEvents() - startEvents
	if rep.Slots > 0 {
		rep.ReconfigsPerSlot = float64(rep.SwitchEvents) / float64(rep.Slots)
	}
	rep.GuardOK = rep.MaxGuard <= rep.GuardBudget
	return m, rep, nil
}
