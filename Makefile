# Tier-1 verification entry point. `make verify` is what CI runs
# (minus -race, which CI adds as a separate job) and what every PR must
# keep green: build, vet, the full test suite (which self-hosts the
# linter via internal/analysis), and an explicit osmosislint pass.

GO ?= go

.PHONY: build vet test race lint bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/osmosislint ./...

# Hot-path microbenchmarks (scheduler TickInto, crossbar Step). CI runs
# these with -benchtime 1x as a smoke test; run locally without BENCHTIME
# for real numbers (see BENCH_sched.json for the tracked baseline).
BENCHTIME ?=
bench:
	$(GO) test -run '^$$' -bench . $(if $(BENCHTIME),-benchtime $(BENCHTIME)) -benchmem ./internal/sched/ ./internal/crossbar/

verify: build vet test lint
	@echo "verify: OK"
