# Tier-1 verification entry point. `make verify` is what CI runs
# (minus -race, which CI adds as a separate job) and what every PR must
# keep green: build, vet, the full test suite (which self-hosts the
# linter via internal/analysis), and an explicit osmosislint pass.

GO ?= go

.PHONY: build vet test race lint verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/osmosislint ./...

verify: build vet test lint
	@echo "verify: OK"
