# Tier-1 verification entry point. `make verify` is what CI runs
# (minus -race, which CI adds as a separate job) and what every PR must
# keep green: build, vet, the full test suite (which self-hosts the
# linter via internal/analysis), and an explicit osmosislint pass.

GO ?= go

.PHONY: build vet test race lint bench verify daemon-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The wall-clock line keeps the linter's cost honest: the whole-module
# interprocedural pass (load, type-check, call graph, propagation, all
# analyzers) runs on every verify, so a regression here slows every PR.
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/osmosislint ./... || exit $$?; \
	end=$$(date +%s); \
	echo "lint: whole-module interprocedural pass took $$((end-start))s wall clock"

# Hot-path microbenchmarks (scheduler TickInto, crossbar Step, the
# sharded fabric kernel at 2048 ports) plus the linter's own full-tree
# pass. CI runs these with -benchtime 1x as a smoke test; run locally
# without BENCHTIME for real numbers (see BENCH_sched.json and
# BENCH_fabric.json for the tracked baselines).
BENCHTIME ?=
bench:
	$(GO) test -run '^$$' -bench . $(if $(BENCHTIME),-benchtime $(BENCHTIME)) -benchmem ./internal/sched/ ./internal/crossbar/ ./internal/fabric/ ./internal/analysis/

# End-to-end osmosisd acceptance: uninterrupted reference run, then a
# checkpoint/kill/restore run of the same two concurrent jobs; the final
# result documents must compare byte-identical. CI runs this as its own
# job; it is not part of `make verify` (it takes ~1-2 minutes).
daemon-smoke:
	./scripts/daemon_smoke.sh

verify: build vet test lint
	@echo "verify: OK"
