// Package repro's top-level benchmarks regenerate the paper's evaluation
// at benchmark granularity: each BenchmarkFigN/BenchmarkTableN times the
// steady-state simulation that produces that figure (cost per simulated
// packet cycle) and reports the figure's headline metric via
// b.ReportMetric, so `go test -bench=.` both exercises the harness and
// prints the reproduced numbers. Full-fidelity series come from
// `go run ./cmd/experiments`.
package repro

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/optics"
	"repro/internal/packet"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
)

// stepBench builds a crossbar switch plus generators and times Step.
func stepBench(b *testing.B, cfg crossbar.Config, load float64) *crossbar.Switch {
	b.Helper()
	sw, err := crossbar.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gens, err := traffic.Build(traffic.Config{Kind: traffic.KindUniform, N: sw.N(), Load: load, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	alloc := packet.NewAllocator()
	arrivals := make([]*packet.Cell, sw.N())
	cycle := sw.Metrics().CycleTime
	// Warm up out of the timed region.
	warm := uint64(500)
	step := func() {
		slot := sw.Slot()
		now := units.Time(slot) * cycle
		for i, g := range gens {
			arrivals[i] = nil
			if a, ok := g.Next(slot); ok {
				arrivals[i] = alloc.New(i, a.Dst, packet.Data, now)
			}
		}
		sw.Step(arrivals)
	}
	for i := uint64(0); i < warm; i++ {
		step()
	}
	sw.StartMeasurement(uint64(b.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	return sw
}

// BenchmarkTable1Requirements: the ASIC-target switch near saturation;
// reports Table-1 compliance metrics.
func BenchmarkTable1Requirements(b *testing.B) {
	cfg := crossbar.Config{
		N: 64, Receivers: 2,
		Scheduler: sched.NewFLPPR(64, 0),
		Format:    core.ASICTargetFormat(),
	}
	sw := stepBench(b, cfg, 0.99)
	m := sw.Metrics()
	b.ReportMetric(m.ThroughputPerPort(64), "thrpt/port")
	b.ReportMetric(core.ASICTargetFormat().EffectiveUserBandwidthFraction(), "eff-bw")
	b.ReportMetric(float64(m.OrderViolations), "ooo")
	b.ReportMetric(float64(m.Dropped), "drops")
}

// BenchmarkFig1SingleStageLatency: the analytic 2xRTT sweep.
func BenchmarkFig1SingleStageLatency(b *testing.B) {
	cell := 51200 * units.Picosecond
	var total units.Time
	for i := 0; i < b.N; i++ {
		for d := 10.0; d <= 100; d += 10 {
			total += core.SingleStageCentralLatency(d, 100*units.Nanosecond, cell).Total
		}
	}
	at50 := core.SingleStageCentralLatency(50, 100*units.Nanosecond, cell)
	b.ReportMetric(at50.Total.Nanoseconds(), "ns-at-50m")
	b.ReportMetric(core.PaperBudget().Total.Nanoseconds(), "budget-ns")
	_ = total
}

// BenchmarkFig2BufferPlacement: option-3 fat-tree steady state; reports
// the OEO cost ratio of option 1 over option 3.
func BenchmarkFig2BufferPlacement(b *testing.B) {
	benchFabric(b, fabric.Config{
		Hosts: 32, Radix: 8, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(8, 0) },
		LinkDelaySlots: 3,
	}, traffic.Config{Kind: traffic.KindUniform, N: 32, Load: 0.6, Seed: 1},
		func(m *fabric.Metrics) {
			b.ReportMetric(2.0, "oeo-opt1/opt3")
			b.ReportMetric(float64(m.LatencySlots.Mean()), "opt3-delay-slots")
		})
}

// benchFabric drives a fabric Step loop under the timer.
func benchFabric(b *testing.B, fcfg fabric.Config, tcfg traffic.Config, report func(*fabric.Metrics)) {
	b.Helper()
	f, err := fabric.New(fcfg)
	if err != nil {
		b.Fatal(err)
	}
	gens, err := traffic.Build(tcfg)
	if err != nil {
		b.Fatal(err)
	}
	alloc := packet.NewAllocator()
	cycle := f.Metrics().CycleTime
	step := func() {
		slot := f.Slot()
		now := units.Time(slot) * cycle
		for h, g := range gens {
			if a, ok := g.Next(slot); ok {
				cls := packet.Data
				if a.Class == traffic.ClassControl {
					cls = packet.Control
				}
				if err := f.Inject(alloc.New(h, a.Dst, cls, now)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		step()
	}
	f.StartMeasurement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	m := f.Metrics()
	m.MeasureSlots = uint64(b.N)
	if report != nil {
		report(m)
	}
}

// BenchmarkFig4FlowControl: hotspot overload on the credit-protected
// fat tree; losslessness is the reported metric.
func BenchmarkFig4FlowControl(b *testing.B) {
	benchFabric(b, fabric.Config{
		Hosts: 32, Radix: 8, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(8, 0) },
		LinkDelaySlots: 4,
	}, traffic.Config{Kind: traffic.KindHotspot, N: 32, Load: 0.85, HotPort: 0, HotFraction: 0.5, Seed: 1},
		func(m *fabric.Metrics) {
			b.ReportMetric(float64(m.Dropped), "drops")
			b.ReportMetric(float64(m.OrderViolations), "ooo")
			b.ReportMetric(float64(m.MaxInterInputDepth), "max-buf-cells")
		})
}

// BenchmarkFig6FLPPRLatency / BenchmarkFig6PriorArtLatency: grant
// latency at light load for the two arbiters of Fig. 6.
func BenchmarkFig6FLPPRLatency(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 2, Scheduler: sched.NewFLPPR(64, 0)}, 0.1)
	b.ReportMetric(sw.Metrics().GrantLatency.Mean(), "grant-cycles")
}

func BenchmarkFig6PriorArtLatency(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 1, Scheduler: sched.NewPipelinedISLIP(64, 0)}, 0.1)
	b.ReportMetric(sw.Metrics().GrantLatency.Mean(), "grant-cycles")
}

// BenchmarkFig7 benches the three delay-vs-throughput curves at 0.9 load.
func BenchmarkFig7DualReceiver(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 2, Scheduler: sched.NewFLPPR(64, 0)}, 0.9)
	b.ReportMetric(sw.Metrics().MeanLatencySlots(), "delay-cycles")
}

func BenchmarkFig7SingleReceiver(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 1, Scheduler: sched.NewFLPPR(64, 0)}, 0.9)
	b.ReportMetric(sw.Metrics().MeanLatencySlots(), "delay-cycles")
}

func BenchmarkFig7IdealOQ(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, IdealOQ: true}, 0.9)
	b.ReportMetric(sw.Metrics().MeanLatencySlots(), "delay-cycles")
}

// BenchmarkFig10OSNRPenalty: the XGM model sweep; reports the DPSK
// loading improvement.
func BenchmarkFig10OSNRPenalty(b *testing.B) {
	m := optics.NewXGMModel()
	var acc float64
	for i := 0; i < b.N; i++ {
		for pin := units.DBm(0); pin <= 20; pin++ {
			acc += float64(m.Penalty(optics.NRZ, optics.BER1e10, pin))
			acc += float64(m.Penalty(optics.DPSK, optics.BER1e10, pin))
		}
	}
	b.ReportMetric(float64(m.DPSKImprovement(optics.BER1e10, 1)), "dpsk-gain-dB")
	_ = acc
}

// BenchmarkSec6CStageCount: the fabric planning arithmetic.
func BenchmarkSec6CStageCount(b *testing.B) {
	var stages int
	for i := 0; i < b.N; i++ {
		for _, radix := range []int{64, 32, 12, 8} {
			p, err := power.PlanFabric(2048, radix, units.IB12xQDRPortRate)
			if err != nil {
				b.Fatal(err)
			}
			stages += p.Stages
		}
	}
	osm, _ := power.PlanFabric(2048, 64, units.IB12xQDRPortRate)
	elec, _ := power.PlanFabric(2048, 32, units.IB12xQDRPortRate)
	comm, _ := power.PlanFabric(2048, 8, units.IB12xQDRPortRate)
	b.ReportMetric(float64(osm.Stages), "osmosis-stages")
	b.ReportMetric(float64(elec.Stages), "electronic-stages")
	b.ReportMetric(float64(comm.Stages), "commodity-stages")
	_ = stages
}

// BenchmarkPowerScaling: CMOS-vs-optical power model evaluation.
func BenchmarkPowerScaling(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		for _, g := range []float64{10, 20, 40, 80, 160} {
			rate := units.Bandwidth(g * 1e9)
			acc += power.DefaultCMOS(64, rate).Power()
			acc += power.DefaultOptical(64, 2, 8, rate).Power(float64(rate) / 2048)
		}
	}
	c := power.DefaultCMOS(64, units.OSMOSISPortRate)
	o := power.DefaultOptical(64, 2, 8, units.OSMOSISPortRate)
	b.ReportMetric(c.Power(), "cmos-w")
	b.ReportMetric(o.Power(19.5e6), "optical-w")
	_ = acc
}

// BenchmarkSec7Scaling: the §VII scale-point arithmetic.
func BenchmarkSec7Scaling(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		p, err := core.NewScalePoint(16, 16, 200*units.GigabitPerSecond)
		if err != nil {
			b.Fatal(err)
		}
		acc += p.Aggregate.TbPerSecond()
	}
	out := core.OutlookScale()
	b.ReportMetric(out.Aggregate.TbPerSecond(), "aggregate-tbps")
	b.ReportMetric(float64(out.FLPPRSpeedupNeeded(4)), "flppr-k")
	_ = acc
}

// BenchmarkStoreAndForward: the §IV packet-store arithmetic.
func BenchmarkStoreAndForward(b *testing.B) {
	var acc units.Time
	for i := 0; i < b.N; i++ {
		for _, bytes := range []int{64, 128, 256, 512, 1024} {
			acc += core.StoreAndForwardPenalty(bytes, units.IB12xQDRPortRate)
		}
	}
	b.ReportMetric(core.StoreAndForwardPenalty(64, units.IB12xQDRPortRate).Nanoseconds(), "ns-64B")
	_ = acc
}

// BenchmarkGuardTimeFEC: FEC encode+decode round trip (the per-cell
// datapath work) with the error-budget headline metrics.
func BenchmarkGuardTimeFEC(b *testing.B) {
	rng := sim.NewRNG(1)
	data := make([]byte, fec.DataSymbols)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	b.SetBytes(int64(fec.DataSymbols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block, err := fec.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		block[i%fec.BlockSymbols] ^= 1 << (i % 8)
		if _, _, err := fec.Decode(block); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(math.Log10(fec.UserBER(1e-10)), "log10-user-ber")
	b.ReportMetric(math.Log10(fec.ResidualBER(1e-10)), "log10-resid-ber")
}

// BenchmarkSec6DBvN: the load-balanced BvN switch step rate with its
// N/2 unloaded latency headline.
func BenchmarkSec6DBvN(b *testing.B) {
	const n = 64
	bvn := sched.NewBvN(n)
	var total, count float64
	bvn.Sink = func(_ *packet.Cell, lat uint64) { total += float64(lat); count++ }
	rng := sim.NewRNG(1)
	alloc := packet.NewAllocator()
	arrivals := make([]*packet.Cell, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range arrivals {
			arrivals[j] = nil
			if rng.Bernoulli(0.05) {
				arrivals[j] = alloc.New(j, rng.Intn(n), packet.Data, 0)
			}
		}
		bvn.Step(arrivals)
	}
	b.StopTimer()
	if count > 0 {
		b.ReportMetric(total/count, "latency-slots")
		b.ReportMetric(float64(n)/2, "n-over-2")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func BenchmarkAblationFLPPRK1(b *testing.B) { benchFLPPRK(b, 1) }
func BenchmarkAblationFLPPRK2(b *testing.B) { benchFLPPRK(b, 2) }
func BenchmarkAblationFLPPRK6(b *testing.B) { benchFLPPRK(b, 6) }

func benchFLPPRK(b *testing.B, k int) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 2, Scheduler: sched.NewFLPPR(64, k)}, 0.95)
	b.ReportMetric(sw.Metrics().ThroughputPerPort(64), "thrpt/port")
	b.ReportMetric(sw.Metrics().MeanLatencySlots(), "delay-cycles")
}

func BenchmarkAblationISLIP1Iter(b *testing.B) {
	sw := stepBench(b, crossbar.Config{N: 64, Receivers: 1, Scheduler: sched.NewISLIP(64, 1)}, 0.95)
	b.ReportMetric(sw.Metrics().ThroughputPerPort(64), "thrpt/port")
}

func BenchmarkAblationGuardTime(b *testing.B) {
	// Pure format arithmetic: user bandwidth across guard times.
	var acc float64
	for i := 0; i < b.N; i++ {
		f := packet.OSMOSISFormat()
		f.GuardTime = units.Time(i%20+1) * units.Nanosecond
		acc += f.EffectiveUserBandwidthFraction()
	}
	demo := packet.OSMOSISFormat()
	b.ReportMetric(demo.EffectiveUserBandwidthFraction(), "eff-bw-demo")
	subNS := packet.OSMOSISFormat()
	subNS.GuardTime = 500 * units.Picosecond
	b.ReportMetric(subNS.EffectiveUserBandwidthFraction(), "eff-bw-subns")
	_ = acc
}

// --- Parallel execution layer (internal/parallel) ---

// benchQuickSuite times the full quick-mode experiment suite — exactly
// what `cmd/experiments -quick -par N` runs — at the given parallelism.
// The serial/parallel pair is the wall-clock comparison recorded in
// BENCH_experiments.json.
func benchQuickSuite(b *testing.B, workers int) {
	all := experiments.All()
	cfg := experiments.RunConfig{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range experiments.RunMany(all, cfg, workers) {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.Experiment.ID, o.Err)
			}
		}
	}
}

func BenchmarkQuickSuiteSerial(b *testing.B) { benchQuickSuite(b, 1) }
func BenchmarkQuickSuiteParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchQuickSuite(b, 0)
}

// BenchmarkSweepSerial/Parallel: one Fig.-7-shaped 8-point load sweep,
// serial vs pooled.
func benchSweep(b *testing.B, workers int) {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 0.95}
	mk := func() sched.Scheduler { return sched.NewFLPPR(16, 0) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crossbar.SweepN(crossbar.Config{N: 16, Receivers: 2}, mk, loads, 1, 300, 2000, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkReplicate8: eight merged replications of one 64-port config.
func BenchmarkReplicate8(b *testing.B) {
	tcfg := traffic.Config{Kind: traffic.KindUniform, Load: 0.9, Seed: 1}
	mk := func() sched.Scheduler { return sched.NewFLPPR(64, 0) }
	var m *crossbar.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		m, err = crossbar.Replicate(crossbar.Config{N: 64, Receivers: 2}, mk, tcfg, 8, 200, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Latency.N()), "merged-samples")
	b.ReportMetric(m.ThroughputPerPort(64), "thrpt/port")
}

// --- Microbenchmarks of the hot paths ---

func BenchmarkSchedFLPPRTick64(b *testing.B) { benchTick(b, sched.NewFLPPR(64, 0)) }
func BenchmarkSchedISLIPTick64(b *testing.B) { benchTick(b, sched.NewISLIP(64, 0)) }
func BenchmarkSchedPIMTick64(b *testing.B)   { benchTick(b, sched.NewPIM(64, 0, 1)) }

type benchBoard struct {
	n      int
	demand [][]int
}

func (bb *benchBoard) N() int                 { return bb.n }
func (bb *benchBoard) Receivers() int         { return 2 }
func (bb *benchBoard) ReceiversAt(int) int    { return 2 }
func (bb *benchBoard) Demand(in, out int) int { return bb.demand[in][out] }
func (bb *benchBoard) Commit(in, out int)     {}
func (bb *benchBoard) Uncommit(in, out int)   {}

func benchTick(b *testing.B, s sched.Scheduler) {
	bb := &benchBoard{n: 64, demand: make([][]int, 64)}
	rng := sim.NewRNG(1)
	for i := range bb.demand {
		bb.demand[i] = make([]int, 64)
		for j := range bb.demand[i] {
			if rng.Bernoulli(0.3) {
				bb.demand[i][j] = 1000000 // effectively inexhaustible
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(uint64(i), bb)
	}
}

func BenchmarkFECEncode(b *testing.B) {
	data := make([]byte, fec.DataSymbols)
	b.SetBytes(fec.DataSymbols)
	for i := 0; i < b.N; i++ {
		if _, err := fec.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelCorrupt(b *testing.B) {
	c := link.NewChannel(0, units.OSMOSISPortRate, 1e-6, 1)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.Corrupt(buf)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := sim.NewRNG(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += r.Uint64()
	}
	_ = acc
}

func BenchmarkFabric128Step(b *testing.B) {
	benchFabric(b, fabric.Config{
		Hosts: 128, Radix: 16, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(16, 0) },
		LinkDelaySlots: 5,
	}, traffic.Config{Kind: traffic.KindUniform, N: 128, Load: 0.7, Seed: 1}, nil)
}

// BenchmarkContainerSwitchStep: the burst-switching baseline of §II.
func BenchmarkContainerSwitchStep(b *testing.B) {
	const n = 16
	cs := sched.NewContainerSwitch(n, 8)
	var total, count float64
	cs.Sink = func(_ *packet.Cell, lat uint64) { total += float64(lat); count++ }
	rng := sim.NewRNG(1)
	alloc := packet.NewAllocator()
	arrivals := make([]*packet.Cell, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range arrivals {
			arrivals[j] = nil
			if rng.Bernoulli(0.05) {
				arrivals[j] = alloc.New(j, rng.Intn(n), packet.Data, 0)
			}
		}
		cs.Step(arrivals)
	}
	b.StopTimer()
	if count > 0 {
		b.ReportMetric(total/count, "latency-slots")
	}
}

// BenchmarkXGFTFiveStageStep: the 5-stage (§VI.C electronic-shape)
// fabric steady state.
func BenchmarkXGFTFiveStageStep(b *testing.B) {
	x, err := fabric.NewXGFT(64, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchFabric(b, fabric.Config{
		Network: x, Receivers: 2,
		NewScheduler:   func() sched.Scheduler { return sched.NewFLPPR(8, 0) },
		LinkDelaySlots: 2,
	}, traffic.Config{Kind: traffic.KindUniform, N: 64, Load: 0.5, Seed: 1},
		func(m *fabric.Metrics) {
			b.ReportMetric(float64(m.LatencySlots.Mean()), "latency-slots")
		})
}

// BenchmarkCellTransport: serialize + FEC + channel + decode for one
// 256 B cell over a clean hop (the per-cell link datapath cost).
func BenchmarkCellTransport(b *testing.B) {
	cd := link.Codec{}
	c := &packet.Cell{ID: 1, Src: 2, Dst: 3, Payload: make([]byte, 256)}
	ch := link.NewChannel(0, units.OSMOSISPortRate, 1e-9, 1)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := link.MarshalCell(c)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := cd.Encode(buf)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cd.Decode(ch.Corrupt(wire))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := link.UnmarshalCell(res.Payload); err != nil {
			b.Fatal(err)
		}
	}
}
